/**
 * @file
 * Tests for the serializable sweep-job API: canonical JSON round
 * trips, golden pinned content hashes (a serialization change is a
 * result-store format break and must fail here first), CellKey
 * ordering against Table-1 order, and spec validation.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "analysis/cell_key.hh"
#include "analysis/job_spec.hh"
#include "analysis/sweep.hh"
#include "workload/app_profile.hh"

using namespace gllc;

namespace
{

/** A spec with every field off its default. */
SweepJobSpec
sampleSpec()
{
    SweepJobSpec spec;
    spec.policies = {"DRRIP+UCD", "GSPC+UCD"};
    spec.frames = {{"3DMarkVAGT1", 0},
                   {"3DMarkVAGT1", 1},
                   {"BioShock", 2}};
    spec.scaleLinear = 8;
    spec.scatterPages = false;
    spec.llcBytes = 4ull << 20;
    spec.collectDramTrace = true;
    spec.threads = 3;
    spec.frameWindow = 6;
    spec.progress = true;
    spec.retries = 5;
    spec.backoffMs = 7;
    spec.cellTimeoutMs = 9000;
    spec.checkpoint = "/tmp/j.jsonl";
    spec.resume = true;
    return spec;
}

} // namespace

TEST(SweepJobSpec, JsonRoundTripIsIdentity)
{
    const SweepJobSpec spec = sampleSpec();
    const std::string json = spec.toJson();
    Result<SweepJobSpec> back = parseSweepJobSpec(json);
    ASSERT_TRUE(back.ok()) << back.error().toString();
    EXPECT_EQ(back.value(), spec);
    // Canonical serialization: re-serializing the parsed spec
    // reproduces the exact bytes.
    EXPECT_EQ(back.value().toJson(), json);
}

TEST(SweepJobSpec, ParserAcceptsAnyFieldOrderAndWhitespace)
{
    const std::string shuffled =
        "{ \"llc_bytes\": 8388608,\n"
        "  \"frames\": [ {\"frame\": 1, \"app\": \"DMC\"} ],\n"
        "  \"scale\": {\"scatter_pages\": true, \"linear\": 4},\n"
        "  \"policies\": [\"DRRIP+UCD\"],\n"
        "  \"gllc_sweep_job\": 1 }";
    Result<SweepJobSpec> spec = parseSweepJobSpec(shuffled);
    ASSERT_TRUE(spec.ok()) << spec.error().toString();
    EXPECT_EQ(spec.value().frames.size(), 1u);
    EXPECT_EQ(spec.value().frames[0].app, "DMC");
    EXPECT_EQ(spec.value().frames[0].frameIndex, 1u);
    // Execution knobs keep struct defaults when absent.
    EXPECT_EQ(spec.value().retries, 2u);
    EXPECT_EQ(spec.value().backoffMs, 25u);
}

TEST(SweepJobSpec, UnknownKeysAreRejected)
{
    SweepJobSpec spec = sampleSpec();
    std::string json = spec.toJson();
    json.pop_back();
    json += ",\"retrees\":3}";  // misspelled knob must not default
    Result<SweepJobSpec> back = parseSweepJobSpec(json);
    ASSERT_FALSE(back.ok());
    EXPECT_EQ(back.error().code, ErrorCode::InvalidArgument);
}

TEST(SweepJobSpec, OutOfRangeU32FieldsAreRejected)
{
    // 2^32 truncated to u32 is 0 — a silently different identity.
    // Every u32 field must reject overflow instead of wrapping.
    const char *overflowing[] = {
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":4294967296}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576}",
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":0}],"
        "\"scale\":{\"linear\":4294967296,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576}",
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":0}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576,\"retries\":4294967296}",
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":0}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576,\"cell_timeout_ms\":4294967296}",
    };
    for (const char *json : overflowing) {
        Result<SweepJobSpec> spec = parseSweepJobSpec(json);
        ASSERT_FALSE(spec.ok()) << json;
        EXPECT_EQ(spec.error().code, ErrorCode::InvalidArgument);
    }

    // The u32 boundary itself still parses.
    Result<SweepJobSpec> edge = parseSweepJobSpec(
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":4294967295}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576}");
    ASSERT_TRUE(edge.ok()) << edge.error().toString();
    EXPECT_EQ(edge.value().frames[0].frameIndex, 4294967295u);
}

TEST(SweepJobSpec, DuplicateKeysAreRejected)
{
    // A repeated array key would concatenate both arrays...
    Result<SweepJobSpec> arrays = parseSweepJobSpec(
        "{\"gllc_sweep_job\":1,"
        "\"policies\":[\"DRRIP+UCD\"],\"policies\":[\"GSPC+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":0}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576}");
    ASSERT_FALSE(arrays.ok());
    EXPECT_EQ(arrays.error().code, ErrorCode::InvalidArgument);

    // ...and a repeated scalar key would be last-wins; both must
    // fail the strictness bar instead of parsing ambiguously.
    Result<SweepJobSpec> scalars = parseSweepJobSpec(
        "{\"gllc_sweep_job\":1,\"policies\":[\"DRRIP+UCD\"],"
        "\"frames\":[{\"app\":\"DMC\",\"frame\":0}],"
        "\"scale\":{\"linear\":4,\"scatter_pages\":true},"
        "\"llc_bytes\":1048576,\"llc_bytes\":2097152}");
    ASSERT_FALSE(scalars.ok());
    EXPECT_EQ(scalars.error().code, ErrorCode::InvalidArgument);
}

TEST(SweepJobSpec, MissingVersionIsBadMagic)
{
    Result<SweepJobSpec> spec =
        parseSweepJobSpec("{\"policies\":[\"DRRIP\"]}");
    ASSERT_FALSE(spec.ok());
    EXPECT_EQ(spec.error().code, ErrorCode::BadMagic);
}

TEST(SweepJobSpec, FutureVersionIsBadVersion)
{
    Result<SweepJobSpec> spec =
        parseSweepJobSpec("{\"gllc_sweep_job\":999}");
    ASSERT_FALSE(spec.ok());
    EXPECT_EQ(spec.error().code, ErrorCode::BadVersion);
}

TEST(SweepJobSpec, GarbageIsCorrupt)
{
    Result<SweepJobSpec> spec = parseSweepJobSpec("{\"unterminated");
    ASSERT_FALSE(spec.ok());
    EXPECT_EQ(spec.error().code, ErrorCode::Corrupt);
}

/**
 * Golden hashes.  These values are pinned on purpose: contentHash()
 * keys the service's result store and traceHash() its trace
 * identity, so any change to the canonical serialization (field
 * order, key spelling, version) silently orphans every stored
 * result.  If this test fails, you changed the format: bump
 * SweepJobSpec::kVersion and re-pin.
 */
TEST(SweepJobSpec, GoldenContentHashesArePinned)
{
    const SweepJobSpec spec = sampleSpec();
    EXPECT_EQ(spec.contentHash(), UINT64_C(0x0c6a56f75e6f2227));
    EXPECT_EQ(spec.traceHash(), UINT64_C(0xa94cfa79eb367088));
}

TEST(SweepJobSpec, ContentHashCoversIdentityOnly)
{
    const SweepJobSpec base = sampleSpec();
    SweepJobSpec tweaked = base;
    tweaked.threads = 99;
    tweaked.retries = 0;
    tweaked.checkpoint = "/elsewhere";
    tweaked.progress = !base.progress;
    EXPECT_EQ(tweaked.contentHash(), base.contentHash());
    EXPECT_EQ(tweaked.traceHash(), base.traceHash());

    SweepJobSpec different = base;
    different.llcBytes *= 2;
    EXPECT_NE(different.contentHash(), base.contentHash());
    // ... but the LLC size does not change which traces render.
    EXPECT_EQ(different.traceHash(), base.traceHash());

    SweepJobSpec rescaled = base;
    rescaled.scaleLinear *= 2;
    EXPECT_NE(rescaled.contentHash(), base.contentHash());
    EXPECT_NE(rescaled.traceHash(), base.traceHash());
}

TEST(SweepJobSpec, ValidateRejectsUnknownNames)
{
    SweepJobSpec spec = sampleSpec();
    spec.policies.push_back("NoSuchPolicy");
    EXPECT_FALSE(spec.validate().ok());

    SweepJobSpec bad_app = sampleSpec();
    bad_app.frames.push_back({"NoSuchApp", 0});
    EXPECT_FALSE(bad_app.validate().ok());

    EXPECT_TRUE(sampleSpec().validate().ok());
}

TEST(SweepJobSpec, ResolveRoundTripsThroughFromSpec)
{
    const AppProfile &app = paperApps().front();
    const SweepJobSpec spec =
        SweepConfig()
            .policies({"DRRIP+UCD"})
            .frames({{&app, 0}})
            .scale({8, true})
            .threads(2)
            .retries(1)
            .backoffMs(3)
            .resolve();
    EXPECT_EQ(SweepConfig::fromSpec(spec).resolve(), spec);
}

TEST(CellKey, OrderFollowsTableOne)
{
    // Table-1 order is paperApps() order, not lexicographic:
    // BioShock precedes AssnCreed nowhere in the alphabet, but
    // "3DMarkVAGT2" precedes "AssnCreed" in both; use apps whose
    // table and lexicographic orders disagree.
    const std::vector<AppProfile> &apps = paperApps();
    ASSERT_GE(apps.size(), 6u);
    // "Civilization" (index 5) < "DMC" (index 4) alphabetically,
    // but the table ranks DMC first.
    const CellKey dmc{"DMC", 0, "DRRIP"};
    const CellKey civ{"Civilization", 0, "DRRIP"};
    EXPECT_LT(dmc, civ);
    EXPECT_FALSE(civ < dmc);

    // Within an app: frames ascend, then policies.
    const CellKey f0{"DMC", 0, "GSPC"};
    const CellKey f1{"DMC", 1, "DRRIP"};
    EXPECT_LT(f0, f1);
    const CellKey p_a{"DMC", 0, "AAA"};
    const CellKey p_b{"DMC", 0, "BBB"};
    EXPECT_LT(p_a, p_b);

    // Unknown apps rank after every table app, ordered by name.
    const CellKey unknown{"ZZZCustomApp", 0, "DRRIP"};
    const CellKey last_table{apps.back().name, 99, "ZZZ"};
    EXPECT_LT(last_table, unknown);
}

TEST(CellKey, SortingMatchesPaperAppOrder)
{
    std::vector<CellKey> keys;
    for (auto it = paperApps().rbegin(); it != paperApps().rend();
         ++it)
        keys.push_back({it->name, 0, "DRRIP"});
    std::sort(keys.begin(), keys.end());
    for (std::size_t i = 0; i < keys.size(); ++i)
        EXPECT_EQ(keys[i].app, paperApps()[i].name);
}

TEST(CellKey, HashAndEqualityAgree)
{
    const CellKey a{"DMC", 3, "DRRIP"};
    const CellKey b{"DMC", 3, "DRRIP"};
    const CellKey c{"DMC", 4, "DRRIP"};
    EXPECT_EQ(a, b);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_NE(a, c);
    EXPECT_NE(a.hash(), c.hash());
    EXPECT_EQ(a.toString(), "DMC frame 3 DRRIP");
}
