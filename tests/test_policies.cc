/**
 * @file
 * Unit tests for the baseline replacement policies: LRU, NRU,
 * Random, SRRIP, DRRIP (set dueling + BIP throttle), GS-DRRIP and
 * SHiP-mem.
 */

#include <gtest/gtest.h>

#include "cache/banked_llc.hh"
#include "cache/policy/drrip.hh"
#include "cache/policy/gs_drrip.hh"
#include "cache/policy/lru.hh"
#include "cache/policy/nru.hh"
#include "cache/policy/random.hh"
#include "cache/policy/ship_mem.hh"
#include "cache/policy/srrip.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s = StreamType::Other, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

AccessInfo
info(const MemAccess &a)
{
    return AccessInfo{&a, 0, kNever};
}

/** Tiny single-set cache driver for direct policy testing. */
class SetDriver
{
  public:
    SetDriver(std::unique_ptr<ReplacementPolicy> policy,
              std::uint32_t ways)
        : policy_(std::move(policy)), ways_(ways)
    {
        policy_->configure(1, ways);
    }

    /** Fill @p ways blocks to warm the set (addresses 1000+i). */
    void
    warm()
    {
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const MemAccess a = acc(1000 + w);
            policy_->onFill(0, w, info(a));
        }
    }

    ReplacementPolicy &policy() { return *policy_; }

  private:
    std::unique_ptr<ReplacementPolicy> policy_;
    std::uint32_t ways_;
};

} // namespace

TEST(Lru, EvictsLeastRecentlyTouched)
{
    SetDriver d(std::make_unique<LruPolicy>(), 4);
    d.warm();  // touch order: way 0, 1, 2, 3
    EXPECT_EQ(d.policy().selectVictim(0), 0u);

    const MemAccess a = acc(1000);
    d.policy().onHit(0, 0, info(a));  // way 0 becomes MRU
    EXPECT_EQ(d.policy().selectVictim(0), 1u);
}

TEST(Lru, HitChainReordersFully)
{
    SetDriver d(std::make_unique<LruPolicy>(), 4);
    d.warm();
    const MemAccess a = acc(1);
    d.policy().onHit(0, 1, info(a));
    d.policy().onHit(0, 0, info(a));
    d.policy().onHit(0, 3, info(a));
    // Way 2 is now the LRU.
    EXPECT_EQ(d.policy().selectVictim(0), 2u);
}

TEST(Lru, Name)
{
    EXPECT_EQ(LruPolicy().name(), "LRU");
}

TEST(Nru, VictimIsFirstUnreferencedWay)
{
    NruPolicy nru;
    nru.configure(1, 4);
    const MemAccess a = acc(1);
    nru.onFill(0, 0, info(a));
    nru.onFill(0, 2, info(a));
    // Ways 1 and 3 never referenced: min way id wins.
    EXPECT_EQ(nru.selectVictim(0), 1u);
}

TEST(Nru, AllReferencedResetsAndPicksWayZero)
{
    NruPolicy nru;
    nru.configure(1, 4);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 4; ++w)
        nru.onFill(0, w, info(a));
    EXPECT_EQ(nru.selectVictim(0), 0u);
    // The reset cleared every bit, so the next victim scan (without
    // intervening touches) starts from way 0 again.
    EXPECT_EQ(nru.selectVictim(0), 0u);
}

TEST(Nru, HitProtectsBlock)
{
    NruPolicy nru;
    nru.configure(1, 2);
    const MemAccess a = acc(1);
    for (std::uint32_t w = 0; w < 2; ++w)
        nru.onFill(0, w, info(a));
    nru.selectVictim(0);       // resets all bits
    nru.onHit(0, 0, info(a));  // re-reference way 0
    EXPECT_EQ(nru.selectVictim(0), 1u);
}

TEST(Random, VictimAlwaysInRange)
{
    RandomPolicy rnd(99);
    rnd.configure(4, 8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(rnd.selectVictim(0), 8u);
}

TEST(Random, DeterministicBySeed)
{
    RandomPolicy a(5), b(5);
    a.configure(1, 16);
    b.configure(1, 16);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.selectVictim(0), b.selectVictim(0));
}

TEST(Srrip, InsertsAtDistantRrpv)
{
    SrripPolicy srrip(2);
    srrip.configure(1, 2);
    const MemAccess a = acc(1, StreamType::Texture);
    srrip.onFill(0, 0, info(a));
    EXPECT_EQ(srrip.fillHistogram()->fillsAt(PolicyStream::Texture, 2),
              1u);
}

TEST(Srrip, HitPromotesToZeroSoVictimIsOther)
{
    SrripPolicy srrip(2);
    srrip.configure(1, 2);
    const MemAccess a = acc(1);
    srrip.onFill(0, 0, info(a));
    srrip.onFill(0, 1, info(a));
    srrip.onHit(0, 1, info(a));
    // Way 0 at RRPV 2, way 1 at 0: aging makes way 0 the victim.
    EXPECT_EQ(srrip.selectVictim(0), 0u);
}

TEST(Srrip, NameIncludesWidth)
{
    EXPECT_EQ(SrripPolicy(2).name(), "SRRIP-2");
    EXPECT_EQ(SrripPolicy(4).name(), "SRRIP-4");
}

TEST(DuelRoles, LeaderFamiliesDisjoint)
{
    int srrip_leaders = 0, brrip_leaders = 0;
    for (std::uint32_t set = 0; set < 4096; ++set) {
        for (unsigned g = 0; g < 4; ++g) {
            const DuelRole role = duelRole(set, g);
            srrip_leaders += (role == DuelRole::SrripLeader);
            brrip_leaders += (role == DuelRole::BrripLeader);
        }
    }
    // One SRRIP and one BRRIP leader per group per 64 sets.
    EXPECT_EQ(srrip_leaders, 4096 / 64 * 4);
    EXPECT_EQ(brrip_leaders, 4096 / 64 * 4);
}

TEST(DuelRoles, GroupsDoNotCollide)
{
    for (std::uint32_t set = 0; set < 64; ++set) {
        int leader_claims = 0;
        for (unsigned g = 0; g < 4; ++g)
            leader_claims += (duelRole(set, g) != DuelRole::Follower);
        EXPECT_LE(leader_claims, 1) << "set " << set;
    }
}

TEST(BrripThrottle, DistantOncePer32)
{
    RripState rrip(2);
    rrip.configure(1, 1);
    BrripThrottle throttle;
    int distant = 0;
    for (int i = 0; i < 320; ++i)
        distant += (throttle.insertionRrpv(rrip) == rrip.distantRrpv());
    EXPECT_EQ(distant, 10);
}

TEST(Drrip, ThrashingTraceMostFillsAtMax)
{
    // A cyclic working set at twice the cache capacity thrashes
    // SRRIP insertion completely, while BRRIP insertion retains a
    // subset and hits: the duel must steer DRRIP toward BRRIP, so
    // the large majority of fills land at RRPV 3.
    LlcConfig config;
    config.capacityBytes = 64 * 1024;  // 1024 blocks
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, DrripPolicy::factory(2));
    for (int rep = 0; rep < 40; ++rep)
        for (std::uint64_t i = 0; i < 2048; ++i)
            llc.access(acc(i, StreamType::Texture));
    const FillHistogram h = llc.mergedFillHistogram();
    const double at3 = static_cast<double>(
        h.fillsAt(PolicyStream::Texture, 3));
    const double total =
        static_cast<double>(h.fills(PolicyStream::Texture));
    EXPECT_GT(at3 / total, 0.8);
    // And BRRIP-mode retention produces real hits on the loop.
    EXPECT_GT(llc.stats().totalHits(), 2048u);
}

TEST(Drrip, FriendlyTraceFillsMostlyDistant)
{
    // A small working set with heavy reuse fits the cache; the duel
    // should not matter much, but fills must be at 2 or 3 only.
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, DrripPolicy::factory(2));
    for (int rep = 0; rep < 50; ++rep)
        for (std::uint64_t i = 0; i < 256; ++i)
            llc.access(acc(i));
    const FillHistogram h = llc.mergedFillHistogram();
    EXPECT_EQ(h.fillsAt(PolicyStream::Rest, 0), 0u);
    EXPECT_EQ(h.fillsAt(PolicyStream::Rest, 1), 0u);
    // And the cache must be hitting after warmup.
    EXPECT_GT(llc.stats().totalHits(), 11000u);
}

TEST(Drrip, NameIncludesWidth)
{
    EXPECT_EQ(DrripPolicy(2).name(), "DRRIP-2");
    EXPECT_EQ(DrripPolicy(4).name(), "DRRIP-4");
}

TEST(GsDrrip, StreamsDuelIndependently)
{
    // Texture scans (BRRIP better) while Z reuses heavily (SRRIP
    // fine): GS-DRRIP should insert most textures at 3 and keep
    // hitting on Z.
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, GsDrripPolicy::factory(2));
    for (int rep = 0; rep < 40; ++rep) {
        for (std::uint64_t i = 0; i < 64; ++i)
            llc.access(acc(100000 + i, StreamType::Z));
        // Texture loops over twice the cache: BRRIP wins its duel.
        for (std::uint64_t i = 0; i < 2048; ++i)
            llc.access(acc(200000 + i, StreamType::Texture));
    }
    const FillHistogram h = llc.mergedFillHistogram();
    const double tex3 = static_cast<double>(
        h.fillsAt(PolicyStream::Texture, 3));
    const double tex_total =
        static_cast<double>(h.fills(PolicyStream::Texture));
    EXPECT_GT(tex3 / tex_total, 0.7);

    const LlcStats stats = llc.stats();
    const auto &z = stats.of(StreamType::Z);
    EXPECT_GT(static_cast<double>(z.hits)
                  / static_cast<double>(z.accesses),
              0.8);
}

TEST(ShipMem, SignatureUses16KRegions)
{
    EXPECT_EQ(ShipMemPolicy::signatureOf(0), 0u);
    EXPECT_EQ(ShipMemPolicy::signatureOf(16 * 1024), 1u);
    EXPECT_EQ(ShipMemPolicy::signatureOf(16 * 1024 - 1), 0u);
    // Bit 27 is the top of the signature; bit 28 aliases to 0.
    EXPECT_EQ(ShipMemPolicy::signatureOf(1ull << 28), 0u);
}

TEST(ShipMem, DeadRegionLearnsRrpv3Insertion)
{
    ShipMemPolicy ship(2);
    ship.configure(2, 2);
    const MemAccess a = acc(1, StreamType::Texture);
    // Fill and evict without reuse repeatedly: region counter decays
    // to zero, after which fills go to RRPV 3.
    for (int i = 0; i < 3; ++i) {
        ship.onFill(0, 0, info(a));
        ship.onEvict(0, 0);
    }
    ship.onFill(0, 0, info(a));
    const FillHistogram *h = ship.fillHistogram();
    EXPECT_GE(h->fillsAt(PolicyStream::Texture, 3), 1u);
}

TEST(ShipMem, ReusedRegionKeepsDistantInsertion)
{
    ShipMemPolicy ship(2);
    ship.configure(2, 2);
    const MemAccess a = acc(1, StreamType::Texture);
    for (int i = 0; i < 4; ++i) {
        ship.onFill(0, 0, info(a));
        ship.onHit(0, 0, info(a));
        ship.onEvict(0, 0);
    }
    ship.onFill(0, 0, info(a));
    const FillHistogram *h = ship.fillHistogram();
    // All five fills at RRPV 2 (counter never reached zero).
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 2), 5u);
    EXPECT_EQ(h->fillsAt(PolicyStream::Texture, 3), 0u);
}

TEST(ShipMem, OutcomeCountedOncePerResidency)
{
    ShipMemPolicy ship(2);
    ship.configure(2, 2);
    const MemAccess a = acc(1);
    ship.onFill(0, 0, info(a));
    // Many hits within one residency increment the table once; the
    // eviction then must not decrement below the initial+1 value.
    for (int i = 0; i < 10; ++i)
        ship.onHit(0, 0, info(a));
    ship.onEvict(0, 0);
    ship.onEvict(0, 0);  // stale double-evict must not underflow
    SUCCEED();
}
