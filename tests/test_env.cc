/**
 * @file
 * Edge-case tests for environment-variable parsing (common/env.cc)
 * and the knobs derived from it: empty and malformed values,
 * overflow, and zero values of GLLC_THREADS / GLLC_FRAME_WINDOW.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "analysis/sweep.hh"
#include "common/env.hh"

using namespace gllc;

namespace
{

/** RAII setter so a failing expectation cannot leak a variable. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (value == nullptr)
            ::unsetenv(name);
        else
            ::setenv(name, value, 1);
    }

    ~ScopedEnv() { ::unsetenv(name_); }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    const char *name_;
};

// ---------------------------------------------------------------
// envInt parsing
// ---------------------------------------------------------------

TEST(EnvIntTest, UnsetUsesFallback)
{
    ScopedEnv e("GLLC_TEST_EDGE", nullptr);
    EXPECT_EQ(envInt("GLLC_TEST_EDGE", 13), 13);
}

TEST(EnvIntTest, EmptyValueUsesFallback)
{
    ScopedEnv e("GLLC_TEST_EDGE", "");
    EXPECT_EQ(envInt("GLLC_TEST_EDGE", 13), 13);
}

TEST(EnvIntTest, ParsesDecimalHexAndNegative)
{
    {
        ScopedEnv e("GLLC_TEST_EDGE", "42");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 0), 42);
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "0x20");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 0), 0x20);
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "-8");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 0), -8);
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "0");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 13), 0);
    }
}

TEST(EnvIntTest, NonNumericValueIsFatal)
{
    ScopedEnv e("GLLC_TEST_EDGE", "fast");
    EXPECT_EXIT(envInt("GLLC_TEST_EDGE", 0),
                ::testing::ExitedWithCode(1), "is not an integer");
}

TEST(EnvIntTest, TrailingGarbageIsFatal)
{
    ScopedEnv e("GLLC_TEST_EDGE", "12abc");
    EXPECT_EXIT(envInt("GLLC_TEST_EDGE", 0),
                ::testing::ExitedWithCode(1), "is not an integer");
}

TEST(EnvIntTest, OverflowIsFatal)
{
    // One past LLONG_MAX, then far past in both directions.
    {
        ScopedEnv e("GLLC_TEST_EDGE", "9223372036854775808");
        EXPECT_EXIT(envInt("GLLC_TEST_EDGE", 0),
                    ::testing::ExitedWithCode(1), "is out of range");
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "99999999999999999999999");
        EXPECT_EXIT(envInt("GLLC_TEST_EDGE", 0),
                    ::testing::ExitedWithCode(1), "is out of range");
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "-99999999999999999999999");
        EXPECT_EXIT(envInt("GLLC_TEST_EDGE", 0),
                    ::testing::ExitedWithCode(1), "is out of range");
    }
}

TEST(EnvIntTest, ExtremeRepresentableValuesParse)
{
    {
        ScopedEnv e("GLLC_TEST_EDGE", "9223372036854775807");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 0), 9223372036854775807LL);
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "-9223372036854775808");
        EXPECT_EQ(envInt("GLLC_TEST_EDGE", 0),
                  -9223372036854775807LL - 1);
    }
}

TEST(EnvStringTest, FallbackAndValue)
{
    {
        ScopedEnv e("GLLC_TEST_EDGE", nullptr);
        EXPECT_EQ(envString("GLLC_TEST_EDGE", "dflt"), "dflt");
    }
    {
        ScopedEnv e("GLLC_TEST_EDGE", "abc");
        EXPECT_EQ(envString("GLLC_TEST_EDGE", "dflt"), "abc");
    }
    {
        // Empty is a present value for strings, unlike for integers.
        ScopedEnv e("GLLC_TEST_EDGE", "");
        EXPECT_EQ(envString("GLLC_TEST_EDGE", "dflt"), "");
    }
}

// ---------------------------------------------------------------
// GLLC_THREADS
// ---------------------------------------------------------------

TEST(SweepThreadsTest, ExplicitRequestWinsOverEnvironment)
{
    ScopedEnv e("GLLC_THREADS", "7");
    EXPECT_EQ(sweepThreads(3), 3u);
}

TEST(SweepThreadsTest, EnvironmentValueUsedWhenUnrequested)
{
    ScopedEnv e("GLLC_THREADS", "5");
    EXPECT_EQ(sweepThreads(0), 5u);
}

TEST(SweepThreadsTest, ZeroFallsBackToHardwareConcurrency)
{
    ScopedEnv e("GLLC_THREADS", "0");
    EXPECT_GE(sweepThreads(0), 1u);
}

TEST(SweepThreadsTest, NegativeFallsBackToHardwareConcurrency)
{
    ScopedEnv e("GLLC_THREADS", "-4");
    EXPECT_GE(sweepThreads(0), 1u);
}

// ---------------------------------------------------------------
// GLLC_FRAME_WINDOW
// ---------------------------------------------------------------

TEST(FrameWindowTest, ZeroWindowDefaultsAndMatchesExplicitWindow)
{
    // GLLC_FRAME_WINDOW=0 must mean "pick a default", not "hold zero
    // frames"; the sweep must still run and produce the same cells
    // as an explicit window.
    ScopedEnv frames("GLLC_FRAMES", "2");
    ScopedEnv scale("GLLC_SCALE", "8");
    ScopedEnv threads("GLLC_THREADS", "2");

    SweepResult narrow;
    {
        ScopedEnv window("GLLC_FRAME_WINDOW", "1");
        narrow = SweepConfig().policies({"DRRIP"}).progress(false).run();
    }
    SweepResult defaulted;
    {
        ScopedEnv window("GLLC_FRAME_WINDOW", "0");
        defaulted =
            SweepConfig().policies({"DRRIP"}).progress(false).run();
    }

    ASSERT_EQ(narrow.cells().size(), defaulted.cells().size());
    ASSERT_EQ(narrow.cells().size(), 2u);
    for (std::size_t i = 0; i < narrow.cells().size(); ++i) {
        const LlcStats &a = narrow.cells()[i].result.stats;
        const LlcStats &b = defaulted.cells()[i].result.stats;
        EXPECT_EQ(a.totalAccesses(), b.totalAccesses()) << "cell " << i;
        EXPECT_EQ(a.totalHits(), b.totalHits()) << "cell " << i;
    }
}

} // namespace
