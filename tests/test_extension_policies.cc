/**
 * @file
 * Tests for the extension baselines (DIP, UCP-stream) and the
 * parameterized GSPC variants used by the ablation harnesses.
 */

#include <gtest/gtest.h>

#include "cache/banked_llc.hh"
#include "cache/geometry.hh"
#include "cache/policy/dip.hh"
#include "cache/policy/ucp_stream.hh"
#include "core/gspc_family.hh"

using namespace gllc;

namespace
{

MemAccess
acc(Addr block, StreamType s = StreamType::Other, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

} // namespace

TEST(Dip, BehavesLikeLruOnFriendlyTrace)
{
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, DipPolicy::factory());
    for (int rep = 0; rep < 20; ++rep)
        for (Addr b = 0; b < 512; ++b)
            llc.access(acc(b));
    // Working set fits: everything beyond the cold misses hits.
    EXPECT_EQ(llc.stats().totalMisses(), 512u);
}

TEST(Dip, BipModeSurvivesThrashingLoop)
{
    // Loop over 2x the cache: pure LRU would miss every access; DIP
    // must switch to BIP insertion and keep a resident subset.
    LlcConfig config;
    config.capacityBytes = 64 * 1024;  // 1024 blocks
    config.ways = 16;
    config.banks = 1;
    BankedLlc llc(config, DipPolicy::factory());
    for (int rep = 0; rep < 40; ++rep)
        for (Addr b = 0; b < 2048; ++b)
            llc.access(acc(b));
    const double hit_rate =
        static_cast<double>(llc.stats().totalHits())
        / static_cast<double>(llc.stats().totalAccesses());
    EXPECT_GT(hit_rate, 0.2);
}

TEST(Dip, Name)
{
    EXPECT_EQ(DipPolicy().name(), "DIP");
}

TEST(UcpStream, InitialAllocationEven)
{
    UcpStreamPolicy ucp;
    ucp.configure(128, 16);
    for (const std::uint32_t ways : ucp.allocation())
        EXPECT_EQ(ways, 4u);
}

TEST(UcpStream, AllocationAlwaysSumsToAssociativity)
{
    LlcConfig config;
    config.capacityBytes = 128 * 1024;
    config.ways = 16;
    config.banks = 1;
    auto policy = std::make_unique<UcpStreamPolicy>(1024);
    UcpStreamPolicy *raw = policy.get();
    BankedLlc llc(config, [&policy] { return std::move(policy); });

    // Mixed-stream traffic with reuse skew: Z blocks loop tightly,
    // texture scans.
    for (int rep = 0; rep < 30; ++rep) {
        for (Addr b = 0; b < 128; ++b)
            llc.access(acc(b, StreamType::Z));
        for (Addr b = 0; b < 2000; ++b)
            llc.access(
                acc(10000 + rep * 2000 + b, StreamType::Texture));
    }
    std::uint32_t total = 0;
    for (const std::uint32_t ways : raw->allocation())
        total += ways;
    EXPECT_EQ(total, 16u);
    for (const std::uint32_t ways : raw->allocation())
        EXPECT_GE(ways, 1u);
}

TEST(UcpStream, HighUtilityStreamWinsWays)
{
    LlcConfig config;
    config.capacityBytes = 128 * 1024;  // 2048 blocks, 128 sets
    config.ways = 16;
    config.banks = 1;
    auto policy = std::make_unique<UcpStreamPolicy>(4096);
    UcpStreamPolicy *raw = policy.get();
    BankedLlc llc(config, [&policy] { return std::move(policy); });

    // Z: heavy reuse over a working set that benefits from many
    // ways; texture: pure scan with zero reuse.
    for (int rep = 0; rep < 50; ++rep) {
        for (Addr b = 0; b < 1500; ++b)
            llc.access(acc(b, StreamType::Z));
        for (Addr b = 0; b < 1000; ++b)
            llc.access(
                acc(100000 + rep * 1000 + b, StreamType::Texture));
    }
    const auto &alloc = raw->allocation();
    const auto z = static_cast<std::size_t>(PolicyStream::Z);
    const auto tex = static_cast<std::size_t>(PolicyStream::Texture);
    EXPECT_GT(alloc[z], alloc[tex]);
}

TEST(UcpStream, Name)
{
    EXPECT_EQ(UcpStreamPolicy().name(), "UCP-stream");
}

TEST(GspcParams, DefaultsMatchPaper)
{
    const GspcParams params;
    EXPECT_EQ(params.t, 8u);
    EXPECT_EQ(params.counterBits, 8u);
    EXPECT_EQ(params.accBits, 7u);
    EXPECT_EQ(params.sampleLog2, 6u);
}

TEST(GspcParams, DenserSamplingLearnsFaster)
{
    // With a 1/4 sample density, counters accumulate roughly 16x the
    // events of the 1/64 default on the same access stream.
    GspcParams dense;
    dense.sampleLog2 = 2;
    GspcFamilyPolicy dense_policy(GspcVariant::Gspc, dense);
    GspcFamilyPolicy default_policy(GspcVariant::Gspc, GspcParams{});
    dense_policy.configure(128, 4);
    default_policy.configure(128, 4);

    for (std::uint32_t set = 0; set < 128; ++set) {
        const MemAccess z = acc(set, StreamType::Z);
        const AccessInfo info{&z, 0, kNever};
        dense_policy.onFill(set, 0, info);
        default_policy.onFill(set, 0, info);
    }
    EXPECT_GT(dense_policy.counters().fillZ(),
              4 * default_policy.counters().fillZ());
}

TEST(GspcParams, NarrowCountersHalveSooner)
{
    GspcParams narrow;
    narrow.counterBits = 4;
    narrow.accBits = 3;
    GspcFamilyPolicy policy(GspcVariant::Gspc, narrow);
    policy.configure(128, 4);
    // 4-bit counters saturate at 15.
    for (int i = 0; i < 40; ++i) {
        const MemAccess z = acc(static_cast<Addr>(i),
                                StreamType::Z);
        const AccessInfo info{&z, 0, kNever};
        policy.onFill(0, 0, info);  // set 0 is a sample set
    }
    EXPECT_LE(policy.counters().fillZ(), 15u);
}

TEST(GspcParams, SampleDensityGeneralization)
{
    for (const unsigned log2 : {2u, 4u, 6u, 8u}) {
        int samples = 0;
        for (std::uint32_t set = 0; set < 4096; ++set)
            samples += isSampleSetAt(set, log2);
        EXPECT_EQ(samples, static_cast<int>(4096 >> log2))
            << "log2 " << log2;
    }
}
