/**
 * @file
 * Unit tests for cache geometry and the sample-set predicate.
 */

#include <gtest/gtest.h>

#include "cache/geometry.hh"

using namespace gllc;

TEST(Geometry, PaperLlcDimensions)
{
    // 8 MB, 16-way, 4 banks (Section 4).
    const CacheGeometry g(8ull << 20, 16, 4);
    EXPECT_EQ(g.setsPerBank(), 2048u);
    EXPECT_EQ(g.totalSets(), 8192u);
    EXPECT_EQ(g.totalBlocks(), (8ull << 20) / 64);
}

TEST(Geometry, SingleBankRenderCache)
{
    // 32 KB 32-way Z cache.
    const CacheGeometry g(32 * 1024, 32, 1);
    EXPECT_EQ(g.setsPerBank(), 16u);
}

TEST(Geometry, FullyAssociativeOneSet)
{
    // 1 KB 16-way vertex index cache: a single set.
    const CacheGeometry g(1024, 16, 1);
    EXPECT_EQ(g.setsPerBank(), 1u);
}

TEST(Geometry, BankInterleavesAtBlockGranularity)
{
    const CacheGeometry g(8ull << 20, 16, 4);
    EXPECT_EQ(g.bankOf(0 * 64), 0u);
    EXPECT_EQ(g.bankOf(1 * 64), 1u);
    EXPECT_EQ(g.bankOf(2 * 64), 2u);
    EXPECT_EQ(g.bankOf(3 * 64), 3u);
    EXPECT_EQ(g.bankOf(4 * 64), 0u);
}

TEST(Geometry, SetWrapsAfterBankStride)
{
    const CacheGeometry g(8ull << 20, 16, 4);
    // Consecutive blocks within one bank advance the set by one.
    EXPECT_EQ(g.setOf(0), 0u);
    EXPECT_EQ(g.setOf(4 * 64), 1u);
    const Addr wrap = static_cast<Addr>(4) * 2048 * 64;
    EXPECT_EQ(g.setOf(wrap), 0u);
    EXPECT_EQ(g.bankOf(wrap), 0u);
}

TEST(Geometry, OffsetsWithinBlockMapTogether)
{
    const CacheGeometry g(1 << 20, 16, 4);
    EXPECT_EQ(g.setOf(1000), g.setOf(blockAlign(1000)));
    EXPECT_EQ(g.bankOf(1000), g.bankOf(blockAlign(1000)));
    EXPECT_EQ(g.tagOf(1000), g.tagOf(1023));
    EXPECT_NE(g.tagOf(1000), g.tagOf(1088));
}

TEST(Geometry, BlockHelpers)
{
    EXPECT_EQ(blockNumber(0), 0u);
    EXPECT_EQ(blockNumber(63), 0u);
    EXPECT_EQ(blockNumber(64), 1u);
    EXPECT_EQ(blockAlign(130), 128u);
}

TEST(GeometryDeath, RejectsNonDivisibleCapacity)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    EXPECT_DEATH(CacheGeometry(1000, 16, 1), "");
#endif
}

TEST(GeometryDeath, RejectsNonPow2Sets)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    // 3 KB 16-way -> 3 sets: not a power of two.
    EXPECT_DEATH(CacheGeometry(3 * 1024, 16, 1), "");
#endif
}

TEST(SampleSets, SixteenPer1024)
{
    int samples = 0;
    for (std::uint32_t set = 0; set < 1024; ++set)
        samples += isSampleSet(set);
    EXPECT_EQ(samples, 16);
}

TEST(SampleSets, DensityHoldsAtEverySize)
{
    for (const std::uint32_t sets : {128u, 256u, 2048u, 8192u}) {
        int samples = 0;
        for (std::uint32_t set = 0; set < sets; ++set)
            samples += isSampleSet(set);
        EXPECT_EQ(samples, static_cast<int>(sets / 64))
            << "at " << sets << " sets";
    }
}

TEST(SampleSets, SetZeroIsSample)
{
    // (0 & 63) == (0 >> 6): the first set always samples.
    EXPECT_TRUE(isSampleSet(0));
    EXPECT_FALSE(isSampleSet(1));
    EXPECT_TRUE(isSampleSet(65));  // 65 & 63 == 1 == 65 >> 6
}
