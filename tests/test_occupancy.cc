/**
 * @file
 * Tests for the stream-occupancy tracker.
 */

#include <gtest/gtest.h>

#include "analysis/occupancy.hh"
#include "analysis/offline_sim.hh"

using namespace gllc;

namespace
{

FrameTrace
mixedTrace()
{
    FrameTrace t;
    for (Addr b = 0; b < 100; ++b)
        t.accesses.emplace_back(b * kBlockBytes,
                                StreamType::RenderTarget, true);
    for (Addr b = 100; b < 150; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Z, true);
    // Consume half the render targets as textures.
    for (Addr b = 0; b < 50; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Texture,
                                false);
    return t;
}

LlcConfig
bigLlc()
{
    LlcConfig c;
    c.capacityBytes = 64 * 1024;
    c.ways = 16;
    c.banks = 1;
    return c;
}

std::uint32_t
at(const OccupancySample &s, StreamType t)
{
    return s.blocks[static_cast<std::size_t>(t)];
}

} // namespace

TEST(Occupancy, CountsResidentBlocksPerStream)
{
    const auto samples = trackOccupancy(mixedTrace(),
                                        policySpec("LRU"), bigLlc(), 4);
    ASSERT_FALSE(samples.empty());
    const OccupancySample &last = samples.back();
    // Nothing evicted (cache bigger than the working set): 150
    // blocks resident; 50 RTs were re-attributed to texture.
    EXPECT_EQ(last.total(), 150u);
    EXPECT_EQ(at(last, StreamType::RenderTarget), 50u);
    EXPECT_EQ(at(last, StreamType::Texture), 50u);
    EXPECT_EQ(at(last, StreamType::Z), 50u);
}

TEST(Occupancy, SamplesAreOrderedAndFinalAtEnd)
{
    const FrameTrace t = mixedTrace();
    const auto samples =
        trackOccupancy(t, policySpec("DRRIP"), bigLlc(), 5);
    ASSERT_GE(samples.size(), 2u);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GT(samples[i].accessIndex, samples[i - 1].accessIndex);
    EXPECT_EQ(samples.back().accessIndex, t.accesses.size());
    EXPECT_LE(samples.size(), 5u);
}

TEST(Occupancy, EvictionsReduceCounts)
{
    // A tiny cache: occupancy must never exceed its block count.
    LlcConfig tiny;
    tiny.capacityBytes = 4 * 1024;  // 64 blocks
    tiny.ways = 4;
    tiny.banks = 1;
    FrameTrace t;
    for (Addr b = 0; b < 2000; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Texture,
                                false);
    const auto samples =
        trackOccupancy(t, policySpec("LRU"), tiny, 4);
    for (const auto &s : samples)
        EXPECT_LE(s.total(), 64u);
}

TEST(Occupancy, UcdKeepsDisplayOut)
{
    FrameTrace t;
    for (Addr b = 0; b < 64; ++b)
        t.accesses.emplace_back(b * kBlockBytes, StreamType::Display,
                                true);
    const auto samples = trackOccupancy(
        t, policySpec("GSPC+UCD"), bigLlc(), 2);
    EXPECT_EQ(at(samples.back(), StreamType::Display), 0u);
    EXPECT_EQ(samples.back().total(), 0u);
}

TEST(Occupancy, GspztcInflatesRtOccupancy)
{
    // Section 5.1: GSPZTC's static RT protection keeps more render
    // target blocks resident than DRRIP does under pressure.
    FrameTrace t;
    // Interleave RT production with heavy texture scan pressure.
    for (int rep = 0; rep < 8; ++rep) {
        for (Addr b = 0; b < 256; ++b)
            t.accesses.emplace_back((b + rep * 256) * kBlockBytes,
                                    StreamType::RenderTarget, true);
        for (Addr b = 0; b < 2000; ++b)
            t.accesses.emplace_back(
                (100000 + rep * 2000 + b) * kBlockBytes,
                StreamType::Texture, false);
    }
    const auto drrip =
        trackOccupancy(t, policySpec("DRRIP"), bigLlc(), 4);
    const auto gspztc =
        trackOccupancy(t, policySpec("GSPZTC"), bigLlc(), 4);
    EXPECT_GT(at(gspztc.back(), StreamType::RenderTarget),
              at(drrip.back(), StreamType::RenderTarget));
}
