/**
 * @file
 * Unit tests for the GPU memory allocator and page scattering.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/memmap.hh"

using namespace gllc;

TEST(GpuMemory, AllocationsArePageAlignedAndDisjoint)
{
    GpuMemory mem(1);
    const Addr a = mem.allocate(10000, "a");
    const Addr b = mem.allocate(5000, "b");
    EXPECT_EQ(a % kPageBytes, 0u);
    EXPECT_EQ(b % kPageBytes, 0u);
    // b starts beyond a's rounded-up extent.
    EXPECT_GE(b, a + 12288);
}

TEST(GpuMemory, TranslationPreservesPageOffset)
{
    GpuMemory mem(1);
    const Addr base = mem.allocate(kPageBytes * 4, "s");
    const Addr pa = mem.translate(base + 123);
    EXPECT_EQ(pa % kPageBytes, 123u);
}

TEST(GpuMemory, PhysicalPagesAreUnique)
{
    GpuMemory mem(7);
    const Addr base = mem.allocate(kPageBytes * 512, "s");
    std::set<Addr> phys;
    for (Addr p = 0; p < 512; ++p)
        phys.insert(mem.translate(base + p * kPageBytes));
    EXPECT_EQ(phys.size(), 512u);
}

TEST(GpuMemory, ScatterBreaksVirtualContiguity)
{
    GpuMemory mem(3, /*scatter=*/true);
    const Addr base = mem.allocate(kPageBytes * 256, "s");
    int contiguous = 0;
    for (Addr p = 0; p + 1 < 256; ++p) {
        const Addr pa0 = mem.translate(base + p * kPageBytes);
        const Addr pa1 = mem.translate(base + (p + 1) * kPageBytes);
        contiguous += (pa1 == pa0 + kPageBytes);
    }
    // Runs of 1-4 pages: the majority of page transitions jump.
    EXPECT_LT(contiguous, 220);
    EXPECT_GT(contiguous, 10);  // but runs do exist
}

TEST(GpuMemory, IdentityModeIsContiguous)
{
    GpuMemory mem(3, /*scatter=*/false);
    const Addr base = mem.allocate(kPageBytes * 64, "s");
    for (Addr p = 0; p + 1 < 64; ++p) {
        const Addr pa0 = mem.translate(base + p * kPageBytes);
        const Addr pa1 = mem.translate(base + (p + 1) * kPageBytes);
        EXPECT_EQ(pa1, pa0 + kPageBytes);
    }
}

TEST(GpuMemory, DeterministicBySeed)
{
    GpuMemory a(42), b(42);
    const Addr base_a = a.allocate(kPageBytes * 128, "s");
    const Addr base_b = b.allocate(kPageBytes * 128, "s");
    EXPECT_EQ(base_a, base_b);
    for (Addr p = 0; p < 128; ++p) {
        EXPECT_EQ(a.translate(base_a + p * kPageBytes),
                  b.translate(base_b + p * kPageBytes));
    }
}

TEST(GpuMemory, DifferentSeedsScatterDifferently)
{
    GpuMemory a(1), b(2);
    const Addr base_a = a.allocate(kPageBytes * 64, "s");
    const Addr base_b = b.allocate(kPageBytes * 64, "s");
    int same = 0;
    for (Addr p = 0; p < 64; ++p) {
        same += (a.translate(base_a + p * kPageBytes)
                 == b.translate(base_b + p * kPageBytes));
    }
    EXPECT_LT(same, 16);
}

TEST(GpuMemory, AllocatedBytesTracksPages)
{
    GpuMemory mem(1);
    mem.allocate(1, "tiny");
    EXPECT_EQ(mem.allocatedBytes(), kPageBytes);
    mem.allocate(kPageBytes + 1, "two");
    EXPECT_EQ(mem.allocatedBytes(), 3 * kPageBytes);
}

TEST(GpuMemory, LargeAllocationSpansArenas)
{
    // Arenas are 4 MB; allocate 10 MB and check all pages map.
    GpuMemory mem(5);
    const std::uint64_t pages = 2560;
    const Addr base = mem.allocate(pages * kPageBytes, "big");
    std::set<Addr> phys;
    for (Addr p = 0; p < pages; ++p)
        phys.insert(mem.translate(base + p * kPageBytes));
    EXPECT_EQ(phys.size(), pages);
}

TEST(GpuMemoryDeath, TranslateUnmappedIsFatal)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    GpuMemory mem(1);
    mem.allocate(kPageBytes, "one");
    EXPECT_DEATH(mem.translate(10 * kPageBytes), "unmapped");
#endif
}

TEST(GpuMemoryDeath, ZeroByteAllocationIsFatal)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    GpuMemory mem(1);
    EXPECT_DEATH(mem.allocate(0, "zero"), "");
#endif
}
