/**
 * @file
 * Event-by-event verification of the GSPC family against the
 * paper's Tables 3, 4 and 5 and the Figure 10 state machine.
 *
 * Set 0 is a sample set ((0 & 63) == (0 >> 6)); set 1 is not.
 */

#include <gtest/gtest.h>

#include "cache/geometry.hh"
#include "core/gspc_family.hh"

using namespace gllc;

namespace
{

constexpr std::uint32_t kSample = 0;
constexpr std::uint32_t kNonSample = 1;

MemAccess
acc(StreamType s, Addr block = 0, bool write = false)
{
    return MemAccess(block * kBlockBytes, s, write);
}

AccessInfo
info(const MemAccess &a)
{
    return AccessInfo{&a, 0, kNever};
}

/** Policy with 128 sets x 4 ways, ready for event injection. */
std::unique_ptr<GspcFamilyPolicy>
makePolicy(GspcVariant variant, std::uint32_t t = 8)
{
    auto p = std::make_unique<GspcFamilyPolicy>(variant, t);
    p->configure(128, 4);
    return p;
}

/**
 * Drive Z fills/hits into the sample set until FILL(Z) > t*HIT(Z)
 * (or the opposite), so non-sample insertion decisions can be
 * checked in both counter regimes.
 */
void
trainZDead(GspcFamilyPolicy &p, int fills)
{
    const MemAccess z = acc(StreamType::Z);
    for (int i = 0; i < fills; ++i)
        p.onFill(kSample, 0, info(z));
}

void
trainZAlive(GspcFamilyPolicy &p, int hits)
{
    const MemAccess z = acc(StreamType::Z);
    for (int i = 0; i < hits; ++i)
        p.onHit(kSample, 0, info(z));
}

} // namespace

TEST(SampleSets, Table2SrripForEveryStream)
{
    // Sample sets execute SRRIP: every fill at RRPV 2, every hit
    // promotes to 0 — for all streams, including render targets.
    auto p = makePolicy(GspcVariant::Gspc);
    for (const StreamType s :
         {StreamType::Z, StreamType::Texture, StreamType::RenderTarget,
          StreamType::Vertex, StreamType::Display}) {
        const MemAccess a = acc(s);
        p->onFill(kSample, 0, info(a));
        EXPECT_EQ(p->rrpvOf(kSample, 0), 2) << streamName(s);
        p->onHit(kSample, 0, info(a));
        EXPECT_EQ(p->rrpvOf(kSample, 0), 0) << streamName(s);
    }
}

TEST(Gspztc, Table3ZFillCounters)
{
    auto p = makePolicy(GspcVariant::Gspztc);
    const MemAccess z = acc(StreamType::Z);
    p->onFill(kSample, 0, info(z));
    EXPECT_EQ(p->counters().fillZ(), 1u);
    EXPECT_EQ(p->counters().acc(), 1u);
    p->onHit(kSample, 0, info(z));
    EXPECT_EQ(p->counters().hitZ(), 1u);
    EXPECT_EQ(p->counters().acc(), 2u);
}

TEST(Gspztc, Table3NonSampleDoesNotLearn)
{
    auto p = makePolicy(GspcVariant::Gspztc);
    const MemAccess z = acc(StreamType::Z);
    p->onFill(kNonSample, 0, info(z));
    p->onHit(kNonSample, 0, info(z));
    EXPECT_EQ(p->counters().fillZ(), 0u);
    EXPECT_EQ(p->counters().hitZ(), 0u);
    EXPECT_EQ(p->counters().acc(), 0u);
}

TEST(Gspztc, Table3ZInsertionBothRegimes)
{
    auto p = makePolicy(GspcVariant::Gspztc, 8);
    const MemAccess z = acc(StreamType::Z);

    // Dead regime: FILL(Z)=9 > 8*HIT(Z)=8.
    trainZDead(*p, 9);
    trainZAlive(*p, 1);
    p->onFill(kNonSample, 0, info(z));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 3);

    // Alive regime: one more hit makes 9 > 16 false.
    trainZAlive(*p, 1);
    p->onFill(kNonSample, 1, info(z));
    EXPECT_EQ(p->rrpvOf(kNonSample, 1), 2);
}

TEST(Gspztc, Table3TexInsertionDistantOrZero)
{
    auto p = makePolicy(GspcVariant::Gspztc, 8);
    const MemAccess tex = acc(StreamType::Texture);

    // Train texture dead: aggregate fills only.
    for (int i = 0; i < 9; ++i)
        p->onFill(kSample, 0, info(tex));
    p->onFill(kNonSample, 0, info(tex));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 3);

    // Train alive: hits to a non-RT texture block.
    for (int i = 0; i < 9; ++i)
        p->onHit(kSample, 0, info(tex));
    p->onFill(kNonSample, 1, info(tex));
    // "otherwise the texture block is filled with RRPV zero because
    // filling it with RRPV two hurts performance" (Section 3).
    EXPECT_EQ(p->rrpvOf(kNonSample, 1), 0);
}

TEST(Gspztc, Table3RtFillAlwaysZeroInNonSamples)
{
    auto p = makePolicy(GspcVariant::Gspztc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(rt));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
    EXPECT_EQ(p->blockState(kNonSample, 0),
              BlockState::RenderTarget);
}

TEST(Gspztc, Table3OtherFillDistantAnyHitZero)
{
    auto p = makePolicy(GspcVariant::Gspztc);
    const MemAccess v = acc(StreamType::Vertex);
    p->onFill(kNonSample, 0, info(v));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 2);
    p->onHit(kNonSample, 0, info(v));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
}

TEST(Gspztc, Table3RtToTexHitCountsAsTexFill)
{
    auto p = makePolicy(GspcVariant::Gspztc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    const MemAccess tex = acc(StreamType::Texture);
    p->onFill(kSample, 0, info(rt));
    EXPECT_EQ(p->counters().fillTexAgg(), 0u);
    p->onHit(kSample, 0, info(tex));
    // Table 3: RT->TEX hit increments FILL(TEX), not HIT(TEX).
    EXPECT_EQ(p->counters().fillTexAgg(), 1u);
    EXPECT_EQ(p->counters().hitTexAgg(), 0u);
    EXPECT_EQ(p->rrpvOf(kSample, 0), 0);
    // And the block has ceased to be a render target.
    EXPECT_EQ(p->blockState(kSample, 0), BlockState::TexE0);
}

TEST(Fig10, TextureEpochProgression)
{
    auto p = makePolicy(GspcVariant::GspztcTse);
    const MemAccess tex = acc(StreamType::Texture);
    p->onFill(kNonSample, 0, info(tex));
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE0);
    p->onHit(kNonSample, 0, info(tex));
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE1);
    p->onHit(kNonSample, 0, info(tex));
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE2Plus);
    p->onHit(kNonSample, 0, info(tex));
    // E>=2 is absorbing until eviction or RT reacquisition.
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE2Plus);
}

TEST(Fig10, RtReacquisitionFromAnyTexState)
{
    auto p = makePolicy(GspcVariant::GspztcTse);
    const MemAccess tex = acc(StreamType::Texture);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(tex));
    p->onHit(kNonSample, 0, info(tex));  // E1
    p->onHit(kNonSample, 0, info(rt));   // application reuses surface
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::RenderTarget);
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);  // RT hit rule
}

TEST(Fig10, EvictionResetsState)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(rt));
    p->onEvict(kNonSample, 0);
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE0);
}

TEST(Tse, Table4SampleEpochCounters)
{
    auto p = makePolicy(GspcVariant::GspztcTse);
    const MemAccess tex = acc(StreamType::Texture);

    p->onFill(kSample, 0, info(tex));
    EXPECT_EQ(p->counters().fillTex(0), 1u);

    p->onHit(kSample, 0, info(tex));  // E0 -> E1
    EXPECT_EQ(p->counters().hitTex(0), 1u);
    EXPECT_EQ(p->counters().fillTex(1), 1u);

    p->onHit(kSample, 0, info(tex));  // E1 -> E2+
    EXPECT_EQ(p->counters().hitTex(1), 1u);

    p->onHit(kSample, 0, info(tex));  // E2+ stays; no epoch counters
    EXPECT_EQ(p->counters().hitTex(0), 1u);
    EXPECT_EQ(p->counters().hitTex(1), 1u);
}

TEST(Tse, Table4NonSampleE0InsertionUsesEpoch0Counters)
{
    auto p = makePolicy(GspcVariant::GspztcTse, 8);
    const MemAccess tex = acc(StreamType::Texture);
    // E0 dead: 9 fills, 1 hit (9 > 8).
    for (int i = 0; i < 8; ++i)
        p->onFill(kSample, 0, info(tex));
    p->onHit(kSample, 0, info(tex));  // also fills E1 counter
    p->onFill(kSample, 0, info(tex));

    p->onFill(kNonSample, 0, info(tex));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 3);
}

TEST(Tse, Table4TexHitRrpvDependsOnE1Counters)
{
    auto p = makePolicy(GspcVariant::GspztcTse, 8);
    const MemAccess tex = acc(StreamType::Texture);

    // Make E1 dead: several E0 hits (each counts FILL(1)) but no
    // second hits.
    for (int i = 0; i < 9; ++i) {
        p->onFill(kSample, 0, info(tex));
        p->onHit(kSample, 0, info(tex));   // FILL(1)++, HIT(0)++
        p->onEvict(kSample, 0);
    }
    EXPECT_GT(p->counters().fillTex(1), 8u * p->counters().hitTex(1));

    // Non-sample: texture hit in E0 must demote to RRPV 3 because
    // the E1 reuse probability is below 1/9.
    p->onFill(kNonSample, 0, info(tex));
    p->onHit(kNonSample, 0, info(tex));
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::TexE1);
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 3);

    // A further hit (E1 -> E2+) always promotes to 0 (Table 4 Else).
    p->onHit(kNonSample, 0, info(tex));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
}

TEST(Tse, GspztcIgnoresEpochCountersOnHit)
{
    // Under plain GSPZTC a texture hit always promotes to 0, even
    // when the E1 counters would say "dead" (that is TSE's edge).
    auto p = makePolicy(GspcVariant::Gspztc, 8);
    const MemAccess tex = acc(StreamType::Texture);
    for (int i = 0; i < 9; ++i) {
        p->onFill(kSample, 0, info(tex));
        p->onHit(kSample, 0, info(tex));
        p->onEvict(kSample, 0);
    }
    p->onFill(kNonSample, 0, info(tex));
    p->onHit(kNonSample, 0, info(tex));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
}

TEST(Gspc, Table5ProdConsCounting)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    const MemAccess tex = acc(StreamType::Texture);

    p->onFill(kSample, 0, info(rt));
    EXPECT_EQ(p->counters().prod(), 1u);
    EXPECT_EQ(p->counters().cons(), 0u);

    // RT hit (blending) does not produce again.
    p->onHit(kSample, 0, info(rt));
    EXPECT_EQ(p->counters().prod(), 1u);

    // RT->TEX consumption.
    p->onHit(kSample, 0, info(tex));
    EXPECT_EQ(p->counters().cons(), 1u);
    EXPECT_EQ(p->counters().fillTex(0), 1u);  // enters E0 (Table 4)
}

TEST(Gspc, Table5NonSampleProductionNotCounted)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(rt));
    EXPECT_EQ(p->counters().prod(), 0u);
}

TEST(Gspc, Table5RtInsertionThreeBands)
{
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    const MemAccess tex = acc(StreamType::Texture);

    // Band 1: PROD > 16*CONS -> RRPV 3.
    {
        auto p = makePolicy(GspcVariant::Gspc);
        for (int i = 0; i < 17; ++i) {
            p->onFill(kSample, 0, info(rt));
            p->onEvict(kSample, 0);
        }
        // CONS = 0 -> 17 > 0.
        p->onFill(kNonSample, 0, info(rt));
        EXPECT_EQ(p->rrpvOf(kNonSample, 0), 3);
        EXPECT_EQ(p->blockState(kNonSample, 0),
                  BlockState::RenderTarget);
    }

    // Band 2: 16*CONS >= PROD > 8*CONS -> RRPV 2.
    {
        auto p = makePolicy(GspcVariant::Gspc);
        for (int i = 0; i < 10; ++i) {
            p->onFill(kSample, 0, info(rt));
            if (i == 0)
                p->onHit(kSample, 0, info(tex));  // one consumption
            p->onEvict(kSample, 0);
        }
        // PROD = 10, CONS = 1: 10 > 16 false, 10 > 8 true.
        p->onFill(kNonSample, 0, info(rt));
        EXPECT_EQ(p->rrpvOf(kNonSample, 0), 2);
    }

    // Band 3: consumption probability >= 1/8 -> RRPV 0.
    {
        auto p = makePolicy(GspcVariant::Gspc);
        for (int i = 0; i < 8; ++i) {
            p->onFill(kSample, 0, info(rt));
            if (i < 2)
                p->onHit(kSample, 0, info(tex));
            p->onEvict(kSample, 0);
        }
        // PROD = 8, CONS = 2: 8 > 32 false, 8 > 16 false.
        p->onFill(kNonSample, 0, info(rt));
        EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
    }
}

TEST(Gspc, Table5RtBlendHitAlwaysZero)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(rt));
    p->onHit(kNonSample, 0, info(rt));
    EXPECT_EQ(p->rrpvOf(kNonSample, 0), 0);
    EXPECT_EQ(p->blockState(kNonSample, 0), BlockState::RenderTarget);
}

TEST(Gspc, DisplayTreatedAsRenderTarget)
{
    // "displayable color is a render target": display fills follow
    // the RT rules and pollute PROD (the motivation for +UCD).
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess disp = acc(StreamType::Display, 0, true);
    p->onFill(kSample, 0, info(disp));
    EXPECT_EQ(p->counters().prod(), 1u);
    EXPECT_EQ(p->blockState(kSample, 0), BlockState::RenderTarget);
}

TEST(GspcFamily, Names)
{
    EXPECT_EQ(GspcFamilyPolicy(GspcVariant::Gspztc).name(), "GSPZTC");
    EXPECT_EQ(GspcFamilyPolicy(GspcVariant::GspztcTse).name(),
              "GSPZTC+TSE");
    EXPECT_EQ(GspcFamilyPolicy(GspcVariant::Gspc).name(), "GSPC");
}

TEST(GspcFamily, VictimSelectionIsRrip)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess v = acc(StreamType::Vertex);
    const MemAccess rt = acc(StreamType::RenderTarget, 0, true);
    p->onFill(kNonSample, 0, info(v));   // RRPV 2
    p->onFill(kNonSample, 1, info(rt));  // RRPV 0 (protect band)
    p->onFill(kNonSample, 2, info(v));   // RRPV 2
    p->onFill(kNonSample, 3, info(v));   // RRPV 2
    // Aging promotes the three RRPV-2 vertex blocks to 3; min way
    // id among them wins.
    EXPECT_EQ(p->selectVictim(kNonSample), 0u);
}

TEST(GspcFamily, FillHistogramExposed)
{
    auto p = makePolicy(GspcVariant::Gspc);
    const MemAccess tex = acc(StreamType::Texture);
    p->onFill(kNonSample, 0, info(tex));
    ASSERT_NE(p->fillHistogram(), nullptr);
    EXPECT_EQ(p->fillHistogram()->fills(PolicyStream::Texture), 1u);
}
