/**
 * @file
 * Unit tests for the render-cache building block.
 */

#include <gtest/gtest.h>

#include "rcache/small_cache.hh"

using namespace gllc;

namespace
{

Addr
block(Addr n)
{
    return n * kBlockBytes;
}

} // namespace

TEST(SmallCache, HitAfterFill)
{
    SmallCache c("t", 16, 4);
    std::vector<MemAccess> out;
    EXPECT_FALSE(c.access(block(1), false, StreamType::Z, 0, out));
    EXPECT_TRUE(c.access(block(1), false, StreamType::Z, 0, out));
    EXPECT_EQ(c.stats().accesses, 2u);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses(), 1u);
}

TEST(SmallCache, ReadMissEmitsFillRequest)
{
    SmallCache c("t", 16, 4);
    std::vector<MemAccess> out;
    c.access(block(3) + 17, false, StreamType::Texture, 42, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].addr, block(3));  // block aligned
    EXPECT_EQ(out[0].stream, StreamType::Texture);
    EXPECT_FALSE(out[0].isWrite);
    EXPECT_EQ(out[0].cycle, 42u);
}

TEST(SmallCache, StoreMissAllocatesSilently)
{
    // Whole-tile writes allocate without fetching (fast clear /
    // full-line write); the LLC sees the data at writeback time.
    SmallCache c("t", 16, 4);
    std::vector<MemAccess> out;
    c.access(block(5), true, StreamType::RenderTarget, 0, out);
    EXPECT_TRUE(out.empty());
    EXPECT_TRUE(c.access(block(5), false, StreamType::RenderTarget, 0,
                         out));
}

TEST(SmallCache, DirtyEvictionEmitsWriteback)
{
    SmallCache c("t", 4, 4);  // one set of 4 ways
    std::vector<MemAccess> out;
    c.access(block(0), true, StreamType::RenderTarget, 0, out);
    for (Addr i = 1; i <= 4; ++i)
        c.access(block(i), false, StreamType::Z, 7, out);
    // Evicting dirty block 0 produced a writeback with the RT tag it
    // was filled under.
    bool found_wb = false;
    for (const MemAccess &a : out) {
        if (a.isWrite) {
            found_wb = true;
            EXPECT_EQ(a.addr, block(0));
            EXPECT_EQ(a.stream, StreamType::RenderTarget);
        }
    }
    EXPECT_TRUE(found_wb);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(SmallCache, LruVictimOrder)
{
    SmallCache c("t", 4, 4);
    std::vector<MemAccess> out;
    for (Addr i = 0; i < 4; ++i)
        c.access(block(i), false, StreamType::Z, 0, out);
    c.access(block(0), false, StreamType::Z, 0, out);  // 0 -> MRU
    c.access(block(9), false, StreamType::Z, 0, out);  // evicts 1
    EXPECT_TRUE(c.access(block(0), false, StreamType::Z, 0, out));
    EXPECT_FALSE(c.access(block(1), false, StreamType::Z, 0, out));
}

TEST(SmallCache, ReadOnlyCacheForwardsWrites)
{
    SmallCache c("t", 16, 4, /*write_allocate=*/false);
    std::vector<MemAccess> out;
    c.access(block(2), true, StreamType::Texture, 5, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].isWrite);
    // And the write did not allocate.
    EXPECT_FALSE(c.access(block(2), false, StreamType::Texture, 5,
                          out));
}

TEST(SmallCache, FlushWritesBackAllDirtyAndInvalidates)
{
    SmallCache c("t", 8, 4);
    std::vector<MemAccess> out;
    c.access(block(1), true, StreamType::RenderTarget, 0, out);
    c.access(block(2), true, StreamType::Display, 0, out);
    c.access(block(3), false, StreamType::Z, 0, out);
    out.clear();
    c.flush(100, out);
    EXPECT_EQ(out.size(), 2u);  // only the dirty blocks
    for (const MemAccess &a : out)
        EXPECT_TRUE(a.isWrite);
    // Everything is invalid afterwards.
    EXPECT_FALSE(c.access(block(1), false, StreamType::Z, 0, out));
    EXPECT_FALSE(c.access(block(3), false, StreamType::Z, 0, out));
}

TEST(SmallCache, FlushPreservesStreamTags)
{
    SmallCache c("t", 8, 4);
    std::vector<MemAccess> out;
    c.access(block(1), true, StreamType::Display, 0, out);
    out.clear();
    c.flush(0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].stream, StreamType::Display);
}

TEST(SmallCache, GeometryClampsWaysToBlocks)
{
    // 1 KB / 16-way vertex index cache: 16 blocks, fully assoc.
    SmallCache c("vtxidx", 16, 16);
    EXPECT_EQ(c.sets(), 1u);
    EXPECT_EQ(c.ways(), 16u);

    // Asking for 128 ways with 16 blocks clamps.
    SmallCache c2("vtx", 16, 128);
    EXPECT_EQ(c2.ways(), 16u);
}

TEST(SmallCache, NonPow2BlocksRoundedDown)
{
    SmallCache c("t", 24, 24);
    EXPECT_EQ(c.sets() * c.ways(), 16u);
}
