/**
 * @file
 * Tests for the DirectX-style workload generator: determinism,
 * stream composition, the 52-frame set and scaling.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

RenderScale
tinyScale()
{
    RenderScale s;
    s.linear = 8;
    return s;
}

const FrameTrace &
cachedFrame()
{
    static const FrameTrace trace =
        renderFrame(paperApps().front(), 0, tinyScale());
    return trace;
}

} // namespace

TEST(AppProfiles, TwelveAppsFiftyTwoFrames)
{
    const auto &apps = paperApps();
    EXPECT_EQ(apps.size(), 12u);
    std::uint32_t frames = 0;
    for (const auto &a : apps)
        frames += a.frames;
    EXPECT_EQ(frames, 52u);
}

TEST(AppProfiles, Table1ResolutionsAndVersions)
{
    EXPECT_EQ(findApp("AssnCreed").width, 1680u);
    EXPECT_EQ(findApp("AssnCreed").height, 1050u);
    EXPECT_EQ(findApp("AssnCreed").directxVersion, 10);
    EXPECT_EQ(findApp("Heaven").width, 2560u);
    EXPECT_EQ(findApp("Heaven").height, 1600u);
    EXPECT_EQ(findApp("Heaven").directxVersion, 11);
    EXPECT_EQ(findApp("3DMarkVAGT1").width, 1920u);
    EXPECT_EQ(findApp("Civilization").directxVersion, 11);
    EXPECT_EQ(findApp("BioShock").directxVersion, 10);
}

TEST(AppProfilesDeath, UnknownAppIsFatal)
{
    EXPECT_EXIT(findApp("Quake"), ::testing::ExitedWithCode(1),
                "unknown application");
}

TEST(FrameSet, FullSetCoversAllApps)
{
    const auto frames = paperFrameSet();
    EXPECT_EQ(frames.size(), 52u);
    std::set<std::string> apps;
    for (const auto &f : frames)
        apps.insert(f.app->name);
    EXPECT_EQ(apps.size(), 12u);
}

TEST(FrameSet, EnvTruncationRoundRobins)
{
    ::setenv("GLLC_FRAMES", "12", 1);
    const auto frames = frameSetFromEnv();
    ::unsetenv("GLLC_FRAMES");
    ASSERT_EQ(frames.size(), 12u);
    std::set<std::string> apps;
    for (const auto &f : frames) {
        apps.insert(f.app->name);
        EXPECT_EQ(f.frameIndex, 0u);  // first frame of each app
    }
    EXPECT_EQ(apps.size(), 12u);
}

TEST(FrameSet, ScaleFromEnv)
{
    ::setenv("GLLC_SCALE", "2", 1);
    EXPECT_EQ(scaleFromEnv().linear, 2u);
    ::unsetenv("GLLC_SCALE");
    EXPECT_EQ(scaleFromEnv().linear, 4u);
}

TEST(FrameSetDeath, ScaleOutOfRangeIsFatal)
{
    ::setenv("GLLC_SCALE", "99", 1);
    EXPECT_EXIT(scaleFromEnv(), ::testing::ExitedWithCode(1),
                "out of range");
    ::unsetenv("GLLC_SCALE");
}

TEST(Renderer, DeterministicPerSeed)
{
    const FrameTrace a = renderFrame(paperApps().front(), 0,
                                     tinyScale());
    const FrameTrace b = renderFrame(paperApps().front(), 0,
                                     tinyScale());
    ASSERT_EQ(a.accesses.size(), b.accesses.size());
    for (std::size_t i = 0; i < a.accesses.size(); ++i) {
        EXPECT_EQ(a.accesses[i].addr, b.accesses[i].addr);
        EXPECT_EQ(a.accesses[i].stream, b.accesses[i].stream);
    }
}

TEST(Renderer, FramesOfOneAppDiffer)
{
    const FrameTrace f0 = renderFrame(paperApps().front(), 0,
                                      tinyScale());
    const FrameTrace f1 = renderFrame(paperApps().front(), 1,
                                      tinyScale());
    EXPECT_NE(f0.accesses.size(), f1.accesses.size());
    EXPECT_EQ(f0.app, f1.app);
    EXPECT_NE(f0.name, f1.name);
}

TEST(Renderer, EveryMajorStreamPresent)
{
    const auto counts = cachedFrame().streamCounts();
    for (const StreamType s :
         {StreamType::Vertex, StreamType::HiZ, StreamType::Z,
          StreamType::RenderTarget, StreamType::Texture,
          StreamType::Display, StreamType::Other}) {
        EXPECT_GT(counts[static_cast<std::size_t>(s)], 0u)
            << streamName(s);
    }
}

TEST(Renderer, RtAndTextureDominateTraffic)
{
    // Figure 4's headline: RT + TEX carry most of the LLC traffic.
    const auto counts = cachedFrame().streamCounts();
    const double total =
        static_cast<double>(cachedFrame().accesses.size());
    const double rt_tex = static_cast<double>(
        counts[static_cast<std::size_t>(StreamType::RenderTarget)]
        + counts[static_cast<std::size_t>(StreamType::Texture)]);
    EXPECT_GT(rt_tex / total, 0.5);
}

TEST(Renderer, StencilOnlyWhenProfiled)
{
    RenderScale scale = tinyScale();
    const FrameTrace with =
        renderFrame(findApp("BioShock"), 0, scale);
    const FrameTrace without =
        renderFrame(findApp("AssnCreed"), 0, scale);
    EXPECT_GT(with.streamCounts()[static_cast<std::size_t>(
                  StreamType::Stencil)],
              0u);
    EXPECT_EQ(without.streamCounts()[static_cast<std::size_t>(
                  StreamType::Stencil)],
              0u);
}

TEST(Renderer, CycleStampsAreMonotoneEnough)
{
    // Stamps may repeat (flush bursts) but must never decrease by
    // more than the flush spreading window.
    const auto &t = cachedFrame();
    std::uint32_t last = 0;
    for (const MemAccess &a : t.accesses) {
        EXPECT_GE(a.cycle + 100000, last);
        last = std::max(last, a.cycle);
    }
    EXPECT_GT(t.work.issueCycles, 0u);
}

TEST(Renderer, WorkCountersPopulated)
{
    const FrameWork &w = cachedFrame().work;
    EXPECT_GT(w.shaderOps, 0u);
    EXPECT_GT(w.texelRequests, 0u);
    EXPECT_GT(w.pixelsShaded, 0u);
    EXPECT_GT(w.verticesShaded, 0u);
    EXPECT_GT(w.rawMemOps, cachedFrame().accesses.size());
}

TEST(Renderer, AddressesAreBlockAligned)
{
    for (const MemAccess &a : cachedFrame().accesses)
        ASSERT_EQ(a.addr % kBlockBytes, 0u);
}

TEST(Renderer, ScalingShrinksTraces)
{
    RenderScale small;
    small.linear = 8;
    RenderScale large;
    large.linear = 4;
    const auto s = renderFrame(paperApps().front(), 0, small);
    const auto l = renderFrame(paperApps().front(), 0, large);
    EXPECT_LT(s.accesses.size(), l.accesses.size());
}

TEST(Renderer, DisplayStreamIsWriteOnly)
{
    for (const MemAccess &a : cachedFrame().accesses) {
        if (a.stream == StreamType::Display) {
            ASSERT_TRUE(a.isWrite);
        }
    }
}

TEST(Renderer, TessellationShiftsVertexToTextureTraffic)
{
    // DX11 tessellation generates vertices on chip (less vertex
    // traffic per triangle) while the domain shader samples a
    // displacement map (more texture traffic).
    AppProfile flat = paperApps().front();
    flat.tessellatedDraws = 0.0;
    AppProfile tess = flat;
    tess.tessellatedDraws = 0.6;

    const FrameTrace f = renderFrame(flat, 0, tinyScale());
    const FrameTrace t = renderFrame(tess, 0, tinyScale());

    const auto share = [](const FrameTrace &tr, StreamType s) {
        return static_cast<double>(
                   tr.streamCounts()[static_cast<std::size_t>(s)])
            / static_cast<double>(tr.accesses.size());
    };
    EXPECT_LT(share(t, StreamType::Vertex),
              share(f, StreamType::Vertex));
    EXPECT_GT(share(t, StreamType::Texture),
              share(f, StreamType::Texture));
}

TEST(Renderer, Dx10ProfilesDoNotTessellate)
{
    for (const AppProfile &app : paperApps()) {
        if (app.directxVersion == 10)
            EXPECT_EQ(app.tessellatedDraws, 0.0) << app.name;
        else
            EXPECT_GT(app.tessellatedDraws, 0.0) << app.name;
    }
}

TEST(Renderer, DistinctBlocksExceedLlcAtScale)
{
    // The working set must oversubscribe the scaled 8 MB LLC, or no
    // replacement policy study is meaningful.
    const std::uint64_t llc_blocks =
        (8ull << 20) / 64 / 64;  // scale 8 -> /64
    EXPECT_GT(cachedFrame().distinctBlocks(), llc_blocks);
}
