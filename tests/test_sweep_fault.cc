/**
 * @file
 * Tests for the sweep engine's fault tolerance: injected cell
 * failures, retry/backoff, quarantine reporting, and
 * checkpoint/resume byte-identity.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/checkpoint.hh"
#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/fault.hh"

using namespace gllc;

namespace
{

/** 2 frames at scale 8, injector disarmed on both sides. */
class SweepFaultEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::setenv("GLLC_FRAMES", "2", 1);
        ::setenv("GLLC_SCALE", "8", 1);
        ::unsetenv("GLLC_THREADS");
        ::unsetenv("GLLC_CHECKPOINT");
        ::unsetenv("GLLC_RESUME");
        configureFaults("");
    }

    void
    TearDown() override
    {
        ::unsetenv("GLLC_FRAMES");
        ::unsetenv("GLLC_SCALE");
        ::unsetenv("GLLC_THREADS");
        ::unsetenv("GLLC_CHECKPOINT");
        ::unsetenv("GLLC_RESUME");
        configureFaults("");
    }
};

/** The canonical sweep every test in this file runs. */
SweepConfig
baseConfig()
{
    return std::move(SweepConfig()
                         .policies({"DRRIP", "NRU"})
                         .backoffMs(0));
}

std::string
sweepJson(const SweepResult &result)
{
    std::ostringstream os;
    result.writeJson(os);
    return os.str();
}

std::string
tempJournal(const char *tag)
{
    return ::testing::TempDir() + "/gllc_sweep_" + tag + ".jsonl";
}

} // namespace

TEST_F(SweepFaultEnv, RetryRecoversAnInjectedThrow)
{
    const SweepResult clean = baseConfig().run();

    configureFaults("cell.throw:p=1,n=1");
    const SweepResult faulted =
        baseConfig().retries(2).threads(1).run();
    configureFaults("");

    EXPECT_TRUE(faulted.quarantined().empty());
    ASSERT_EQ(faulted.cells().size(), clean.cells().size());

    unsigned retried = 0;
    for (const SweepCell &cell : faulted.cells())
        retried += cell.attempts > 1 ? 1 : 0;
    EXPECT_EQ(retried, 1u);

    // The attempt that failed left no residue: results match a
    // clean run cell for cell (attempts differ, payloads must not).
    for (std::size_t i = 0; i < clean.cells().size(); ++i) {
        EXPECT_EQ(faulted.cells()[i].key.app, clean.cells()[i].key.app);
        EXPECT_EQ(faulted.cells()[i].key.policy,
                  clean.cells()[i].key.policy);
        EXPECT_EQ(
            faulted.cells()[i].result.stats.totalMisses(),
            clean.cells()[i].result.stats.totalMisses());
    }
}

TEST_F(SweepFaultEnv, ExhaustedRetriesLandInQuarantine)
{
    configureFaults("cell.throw:p=1");
    const SweepResult result = baseConfig().retries(1).run();
    configureFaults("");

    EXPECT_TRUE(result.cells().empty());
    ASSERT_EQ(result.quarantined().size(), 4u);
    for (const QuarantinedCell &q : result.quarantined()) {
        EXPECT_EQ(q.attempts, 2u);
        EXPECT_NE(q.error.find("cell.throw"), std::string::npos);
    }

    // The quarantine manifest reaches both export formats.
    std::ostringstream csv;
    result.writeCsv(csv);
    EXPECT_NE(csv.str().find(",quarantined,"), std::string::npos);
    const std::string json = sweepJson(result);
    EXPECT_NE(json.find("\"quarantined\": ["), std::string::npos);
    EXPECT_NE(json.find("cell.throw"), std::string::npos);

    // Aggregation over an all-quarantined sweep must not crash.
    std::ostringstream table;
    result.printNormalizedTable(table, "LLC misses", missMetric,
                                "DRRIP");
    EXPECT_NE(table.str().find("quarantined"), std::string::npos);
}

TEST_F(SweepFaultEnv, SurvivorsStillProduceCompleteResults)
{
    configureFaults("sim.access:p=1,n=1");
    const SweepResult result = baseConfig().retries(0).threads(1).run();
    configureFaults("");

    EXPECT_EQ(result.quarantined().size(), 1u);
    EXPECT_EQ(result.cells().size(), 3u);
    for (const SweepCell &cell : result.cells())
        EXPECT_GT(cell.result.stats.totalAccesses(), 0u);

    std::ostringstream table;
    result.printNormalizedTable(table, "LLC misses", missMetric,
                                "DRRIP");
    EXPECT_FALSE(table.str().empty());
}

TEST_F(SweepFaultEnv, InjectedDelayDoesNotChangeResults)
{
    const SweepResult clean = baseConfig().run();

    configureFaults("cell.delay:p=1,n=2");
    const SweepResult delayed =
        baseConfig().cellTimeoutMs(10).threads(2).run();
    configureFaults("");

    EXPECT_TRUE(delayed.quarantined().empty());
    EXPECT_EQ(sweepJson(delayed), sweepJson(clean));
}

TEST_F(SweepFaultEnv, CheckpointedRunMatchesPlainRun)
{
    const std::string path = tempJournal("plain");
    const std::string jsonA = sweepJson(baseConfig().run());
    const std::string jsonB =
        sweepJson(baseConfig().checkpoint(path).run());
    EXPECT_EQ(jsonA, jsonB);

    // The journal holds every cell of the finished sweep.
    Result<CheckpointContents> journal = loadCheckpoint(path);
    ASSERT_TRUE(journal.ok()) << journal.error().toString();
    EXPECT_EQ(journal.value().cells.size(), 4u);
    std::remove(path.c_str());
}

TEST_F(SweepFaultEnv, ResumeAfterKillIsByteIdentical)
{
    const std::string path = tempJournal("resume");
    const std::string uninterrupted = sweepJson(baseConfig().run());

    // Produce a full journal, then chop it after the first cell to
    // simulate a mid-run kill (the torn half-line included).
    sweepJson(baseConfig().checkpoint(path).run());
    std::vector<std::string> lines;
    {
        std::ifstream is(path, std::ios::binary);
        std::string line;
        while (std::getline(is, line))
            lines.push_back(line);
    }
    ASSERT_GE(lines.size(), 3u);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << lines[0] << '\n' << lines[1] << '\n';
        os << lines[2].substr(0, lines[2].size() / 2);
    }

    const SweepResult resumed =
        baseConfig().checkpoint(path).resume(true).run();
    EXPECT_EQ(resumed.restoredCells(), 1u);
    EXPECT_TRUE(resumed.quarantined().empty());
    EXPECT_EQ(sweepJson(resumed), uninterrupted);

    // After the resumed run the journal is complete and clean
    // again: the torn fragment was trimmed, not glued onto.
    Result<CheckpointContents> journal = loadCheckpoint(path);
    ASSERT_TRUE(journal.ok()) << journal.error().toString();
    EXPECT_EQ(journal.value().cells.size(), 4u);
    EXPECT_EQ(journal.value().skippedLines, 0u);
    std::remove(path.c_str());
}

TEST_F(SweepFaultEnv, ResumeFromGarbageJournalRunsFully)
{
    const std::string path = tempJournal("garbage");
    {
        std::ofstream os(path, std::ios::binary);
        os << "not a journal at all\n";
    }
    const SweepResult result =
        baseConfig().checkpoint(path).resume(true).run();
    EXPECT_EQ(result.restoredCells(), 0u);
    EXPECT_EQ(result.cells().size(), 4u);

    // The unusable journal was restarted, not appended to.
    Result<CheckpointContents> journal = loadCheckpoint(path);
    ASSERT_TRUE(journal.ok()) << journal.error().toString();
    EXPECT_EQ(journal.value().cells.size(), 4u);
    std::remove(path.c_str());
}

TEST_F(SweepFaultEnv, CliArgsWireResumeAndCheckpoint)
{
    const char *argv[] = {"bench", "--checkpoint", "/tmp/x.jsonl",
                          "--resume", "--csv", "out.csv"};
    SweepConfig config;
    config.policies({"DRRIP"})
        .cliArgs(6, const_cast<char **>(argv));
    const SweepJobSpec spec = config.resolve();
    EXPECT_EQ(spec.checkpoint, "/tmp/x.jsonl");
    EXPECT_TRUE(spec.resume);
}

TEST_F(SweepFaultEnv, EnvKnobsFeedTheResolvers)
{
    ::setenv("GLLC_CELL_RETRIES", "5", 1);
    ::setenv("GLLC_CELL_BACKOFF_MS", "3", 1);
    ::setenv("GLLC_CELL_TIMEOUT_MS", "1234", 1);
    ::setenv("GLLC_CHECKPOINT", "/tmp/env.jsonl", 1);
    ::setenv("GLLC_RESUME", "1", 1);
    const SweepJobSpec spec = SweepConfig().resolve();
    EXPECT_EQ(spec.retries, 5u);
    EXPECT_EQ(spec.backoffMs, 3u);
    EXPECT_EQ(spec.cellTimeoutMs, 1234u);
    EXPECT_EQ(spec.checkpoint, "/tmp/env.jsonl");
    EXPECT_TRUE(spec.resume);

    // Builder overrides beat the environment.
    EXPECT_EQ(SweepConfig().retries(0).resolve().retries, 0u);
    EXPECT_FALSE(SweepConfig().resume(false).resolve().resume);
    ::unsetenv("GLLC_CELL_RETRIES");
    ::unsetenv("GLLC_CELL_BACKOFF_MS");
    ::unsetenv("GLLC_CELL_TIMEOUT_MS");
}

TEST_F(SweepFaultEnv, MismatchedJournalConfigurationIsFatal)
{
    const std::string path = tempJournal("mismatch");
    sweepJson(baseConfig().checkpoint(path).run());
    EXPECT_EXIT(SweepConfig()
                    .policies({"DRRIP"})
                    .checkpoint(path)
                    .resume(true)
                    .run(),
                ::testing::ExitedWithCode(1),
                "different sweep configuration");
    std::remove(path.c_str());
}
