/**
 * @file
 * Unit tests for src/common: saturating counters, RNG, statistics
 * helpers and environment parsing.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <sstream>

#include "common/env.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"

using namespace gllc;

TEST(SatCounter, StartsAtInitialValue)
{
    EXPECT_EQ(SatCounter(8).value(), 0u);
    EXPECT_EQ(SatCounter(8, 42).value(), 42u);
}

TEST(SatCounter, MaxMatchesWidth)
{
    EXPECT_EQ(SatCounter(1).max(), 1u);
    EXPECT_EQ(SatCounter(3).max(), 7u);
    EXPECT_EQ(SatCounter(7).max(), 127u);
    EXPECT_EQ(SatCounter(8).max(), 255u);
}

TEST(SatCounter, IncrementSaturatesAtMax)
{
    SatCounter c(3);
    for (int i = 0; i < 20; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 7u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, IncrementByAmountSaturates)
{
    SatCounter c(8);
    c.increment(300);
    EXPECT_EQ(c.value(), 255u);
}

TEST(SatCounter, DecrementClampsAtZero)
{
    SatCounter c(8, 2);
    c.decrement();
    c.decrement();
    c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, HalveShiftsRight)
{
    SatCounter c(8, 101);
    c.halve();
    EXPECT_EQ(c.value(), 50u);
    c.halve();
    EXPECT_EQ(c.value(), 25u);
}

TEST(SatCounter, ResetZeroes)
{
    SatCounter c(8, 200);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_FALSE(c.saturated());
}

TEST(DuelCounter, StartsAtMidpoint)
{
    DuelCounter d(10);
    EXPECT_EQ(d.value(), 512u);
    EXPECT_FALSE(d.upperHalf());
}

TEST(DuelCounter, UpDownMove)
{
    DuelCounter d(10);
    d.up();
    EXPECT_TRUE(d.upperHalf());
    d.down();
    d.down();
    EXPECT_FALSE(d.upperHalf());
}

TEST(DuelCounter, ClampsAtBounds)
{
    DuelCounter d(4);
    for (int i = 0; i < 100; ++i)
        d.up();
    EXPECT_EQ(d.value(), 15u);
    for (int i = 0; i < 100; ++i)
        d.down();
    EXPECT_EQ(d.value(), 0u);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.below(13);
        EXPECT_LT(v, 13u);
    }
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(3);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= (v == -2);
        saw_hi |= (v == 2);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsProbability)
{
    Rng rng(9);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, GaussianMeanAndSpread)
{
    Rng rng(17);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(42);
    Rng fork = a.fork(1);
    // The fork should not replay the parent's stream.
    Rng b(42);
    b.next();  // parent consumed one value while forking
    EXPECT_NE(fork.next(), b.next());
}

TEST(Zipf, UniformWhenThetaZero)
{
    Rng rng(1);
    ZipfSampler zipf(10, 0.0);
    std::array<int, 10> counts{};
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    for (const int c : counts)
        EXPECT_NEAR(c / 50000.0, 0.1, 0.02);
}

TEST(Zipf, SkewPrefersLowRanks)
{
    Rng rng(1);
    ZipfSampler zipf(50, 1.0);
    std::array<int, 50> counts{};
    for (int i = 0; i < 50000; ++i)
        ++counts[zipf.sample(rng)];
    EXPECT_GT(counts[0], counts[10]);
    EXPECT_GT(counts[10], counts[49]);
}

TEST(Zipf, SamplesWithinPopulation)
{
    Rng rng(2);
    ZipfSampler zipf(3, 0.8);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(zipf.sample(rng), 3u);
}

TEST(Stats, MeanOfEmptyIsZero)
{
    EXPECT_EQ(mean({}), 0.0);
}

TEST(Stats, MeanBasics)
{
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Stats, GeomeanBasics)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Stats, SafeRatioGuardsZero)
{
    EXPECT_EQ(safeRatio(5.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeRatio(6.0, 3.0), 2.0);
}

TEST(Stats, FmtDecimals)
{
    EXPECT_EQ(fmt(1.23456, 2), "1.23");
    EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Stats, FmtPct)
{
    EXPECT_EQ(fmtPct(0.123), "12.3%");
    EXPECT_EQ(fmtPct(1.0, 0), "100%");
}

TEST(Stats, TablePrinterAlignsColumns)
{
    TablePrinter tp({"a", "bbbb"});
    tp.addRow({"xxx", "y"});
    std::ostringstream os;
    tp.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a    bbbb"), std::string::npos);
    EXPECT_NE(out.find("xxx  y"), std::string::npos);
    EXPECT_EQ(tp.rows(), 1u);
}

TEST(Env, IntFallbackWhenUnset)
{
    ::unsetenv("GLLC_TEST_INT");
    EXPECT_EQ(envInt("GLLC_TEST_INT", 7), 7);
}

TEST(Env, IntParsesValue)
{
    ::setenv("GLLC_TEST_INT", "42", 1);
    EXPECT_EQ(envInt("GLLC_TEST_INT", 7), 42);
    ::setenv("GLLC_TEST_INT", "-3", 1);
    EXPECT_EQ(envInt("GLLC_TEST_INT", 7), -3);
    ::unsetenv("GLLC_TEST_INT");
}

TEST(Env, StringFallback)
{
    ::unsetenv("GLLC_TEST_STR");
    EXPECT_EQ(envString("GLLC_TEST_STR", "dflt"), "dflt");
    ::setenv("GLLC_TEST_STR", "abc", 1);
    EXPECT_EQ(envString("GLLC_TEST_STR", "dflt"), "abc");
    ::unsetenv("GLLC_TEST_STR");
}

TEST(EnvDeath, MalformedIntIsFatal)
{
    ::setenv("GLLC_TEST_INT", "notanumber", 1);
    EXPECT_EXIT(envInt("GLLC_TEST_INT", 0),
                ::testing::ExitedWithCode(1), "not an integer");
    ::unsetenv("GLLC_TEST_INT");
}
