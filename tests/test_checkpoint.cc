/**
 * @file
 * Tests for the sweep checkpoint journal: integer-exact cell round
 * trips, header/meta pinning, and torn-line tolerance.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/checkpoint.hh"
#include "analysis/sweep.hh"

using namespace gllc;

namespace
{

CheckpointMeta
sampleMeta()
{
    CheckpointMeta meta;
    meta.scaleLinear = 4;
    meta.llcBytes = 1ull << 20;
    meta.llcWays = 16;
    meta.llcBanks = 4;
    meta.policies = {"DRRIP", "GSPC \"quoted\""};
    return meta;
}

/** A cell with every journaled field holding a distinctive value. */
SweepCell
sampleCell(std::uint32_t frame)
{
    SweepCell cell;
    cell.key = {"App\\One", frame, "DRRIP"};
    cell.attempts = 2;
    LlcStats &s = cell.result.stats;
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        s.stream[i].accesses = 1000 + i * 17 + frame;
        s.stream[i].hits = 900 + i;
        s.stream[i].misses = 90 + i;
        s.stream[i].bypasses = 10 + i;
    }
    s.writebacks = 777 + frame;
    s.evictions = 888;
    Characterization &ch = cell.result.characterization;
    ch.interTexHits = 11;
    ch.intraTexHits = 22;
    ch.rtProductions = 33;
    ch.rtConsumptions = 44;
    for (unsigned k = 0; k < Characterization::kEpochs; ++k) {
        ch.texEpochHits[k] = 100 + k;
        ch.texReach[k] = 200 + k;
        ch.zReach[k] = 300 + k;
    }
    for (std::size_t p = 0; p < kNumPolicyStreams; ++p) {
        for (unsigned r = 0; r < FillHistogram::kMaxRrpv; ++r)
            cell.result.fills.counts[p][r] = p * 100 + r;
    }
    return cell;
}

void
expectCellEqual(const SweepCell &a, const SweepCell &b)
{
    EXPECT_EQ(a.key.app, b.key.app);
    EXPECT_EQ(a.key.frameIndex, b.key.frameIndex);
    EXPECT_EQ(a.key.policy, b.key.policy);
    EXPECT_EQ(a.attempts, b.attempts);
    for (std::size_t i = 0; i < kNumStreams; ++i) {
        EXPECT_EQ(a.result.stats.stream[i].accesses,
                  b.result.stats.stream[i].accesses);
        EXPECT_EQ(a.result.stats.stream[i].hits,
                  b.result.stats.stream[i].hits);
        EXPECT_EQ(a.result.stats.stream[i].misses,
                  b.result.stats.stream[i].misses);
        EXPECT_EQ(a.result.stats.stream[i].bypasses,
                  b.result.stats.stream[i].bypasses);
    }
    EXPECT_EQ(a.result.stats.writebacks, b.result.stats.writebacks);
    EXPECT_EQ(a.result.stats.evictions, b.result.stats.evictions);
    const Characterization &ca = a.result.characterization;
    const Characterization &cb = b.result.characterization;
    EXPECT_EQ(ca.interTexHits, cb.interTexHits);
    EXPECT_EQ(ca.intraTexHits, cb.intraTexHits);
    EXPECT_EQ(ca.rtProductions, cb.rtProductions);
    EXPECT_EQ(ca.rtConsumptions, cb.rtConsumptions);
    EXPECT_EQ(ca.texEpochHits, cb.texEpochHits);
    EXPECT_EQ(ca.texReach, cb.texReach);
    EXPECT_EQ(ca.zReach, cb.zReach);
    EXPECT_EQ(a.result.fills.counts, b.result.fills.counts);
}

std::string
tempJournal(const char *tag)
{
    return ::testing::TempDir() + "/gllc_ckpt_" + tag + ".jsonl";
}

} // namespace

TEST(Checkpoint, RoundTripsCellsExactly)
{
    const std::string path = tempJournal("roundtrip");
    const CheckpointMeta meta = sampleMeta();
    {
        CheckpointWriter writer(path, meta, false);
        writer.append(sampleCell(0));
        writer.append(sampleCell(1));
    }

    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    const CheckpointContents &contents = loaded.value();
    EXPECT_EQ(contents.meta, meta);
    EXPECT_EQ(contents.skippedLines, 0u);
    ASSERT_EQ(contents.cells.size(), 2u);

    for (std::uint32_t frame = 0; frame < 2; ++frame) {
        const SweepCell want = sampleCell(frame);
        const auto it = contents.cells.find(want.key);
        ASSERT_NE(it, contents.cells.end()) << frame;
        expectCellEqual(it->second, want);
    }
    std::remove(path.c_str());
}

TEST(Checkpoint, TornTailLineIsSkippedNotFatal)
{
    const std::string path = tempJournal("torn");
    {
        CheckpointWriter writer(path, sampleMeta(), false);
        writer.append(sampleCell(0));
        writer.append(sampleCell(1));
    }
    // Chop the file mid-way through the last line, as a kill during
    // a write would.
    std::string bytes;
    {
        std::ifstream is(path, std::ios::binary);
        std::stringstream ss;
        ss << is.rdbuf();
        bytes = ss.str();
    }
    const std::size_t last_line = bytes.rfind("{\"app\":");
    ASSERT_NE(last_line, std::string::npos);
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(last_line + 40));
    }

    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().cells.size(), 1u);
    EXPECT_EQ(loaded.value().skippedLines, 1u);
    std::remove(path.c_str());
}

TEST(Checkpoint, CorruptedLineFailsItsChecksum)
{
    const std::string path = tempJournal("corrupt");
    {
        CheckpointWriter writer(path, sampleMeta(), false);
        writer.append(sampleCell(0));
    }
    std::string bytes;
    {
        std::ifstream is(path, std::ios::binary);
        std::stringstream ss;
        ss << is.rdbuf();
        bytes = ss.str();
    }
    // Flip one digit inside the cell line's payload.
    const std::size_t pos = bytes.find("\"writebacks\":777");
    ASSERT_NE(pos, std::string::npos);
    bytes[pos + 14] = '9';
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os.write(bytes.data(),
                 static_cast<std::streamsize>(bytes.size()));
    }

    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_TRUE(loaded.value().cells.empty());
    EXPECT_EQ(loaded.value().skippedLines, 1u);
    std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsIoError)
{
    Result<CheckpointContents> loaded =
        loadCheckpoint("/nonexistent/dir/journal.jsonl");
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Io);
}

TEST(Checkpoint, GarbageHeaderIsCorrupt)
{
    const std::string path = tempJournal("garbage");
    {
        std::ofstream os(path, std::ios::binary);
        os << "this is not a checkpoint\n";
    }
    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Corrupt);
    std::remove(path.c_str());
}

TEST(Checkpoint, AppendModeKeepsExistingCells)
{
    const std::string path = tempJournal("append");
    const CheckpointMeta meta = sampleMeta();
    {
        CheckpointWriter writer(path, meta, false);
        writer.append(sampleCell(0));
    }
    {
        // Resume-style reopen: header must not be duplicated.
        CheckpointWriter writer(path, meta, true);
        writer.append(sampleCell(1));
    }
    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().cells.size(), 2u);
    EXPECT_EQ(loaded.value().skippedLines, 0u);
    EXPECT_EQ(loaded.value().meta, meta);
    std::remove(path.c_str());
}

TEST(Checkpoint, MetaMismatchIsDetectable)
{
    const std::string path = tempJournal("meta");
    {
        CheckpointWriter writer(path, sampleMeta(), false);
    }
    CheckpointMeta other = sampleMeta();
    other.policies = {"NRU"};
    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok());
    EXPECT_TRUE(loaded.value().meta == sampleMeta());
    EXPECT_TRUE(loaded.value().meta != other);
    std::remove(path.c_str());
}

TEST(Checkpoint, ConcurrentAppendersTearNoLines)
{
    // Regression for the writer's thread-safety contract: the
    // sharded service path appends from several driver threads at
    // once; every journaled line must stay whole and checksummed.
    const std::string path = tempJournal("concurrent");
    constexpr unsigned kThreads = 8;
    constexpr std::uint32_t kCellsPerThread = 25;
    {
        CheckpointWriter writer(path, sampleMeta(), false);
        std::vector<std::thread> appenders;
        appenders.reserve(kThreads);
        for (unsigned t = 0; t < kThreads; ++t) {
            appenders.emplace_back([&writer, t] {
                for (std::uint32_t i = 0; i < kCellsPerThread; ++i)
                    writer.append(
                        sampleCell(t * kCellsPerThread + i));
            });
        }
        for (std::thread &t : appenders)
            t.join();
        writer.sync();
    }

    Result<CheckpointContents> loaded = loadCheckpoint(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().skippedLines, 0u);
    ASSERT_EQ(loaded.value().cells.size(),
              static_cast<std::size_t>(kThreads) * kCellsPerThread);
    for (std::uint32_t f = 0; f < kThreads * kCellsPerThread; ++f) {
        const SweepCell want = sampleCell(f);
        const auto it = loaded.value().cells.find(want.key);
        ASSERT_NE(it, loaded.value().cells.end()) << f;
        expectCellEqual(it->second, want);
    }
    std::remove(path.c_str());
}
