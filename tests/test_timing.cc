/**
 * @file
 * Tests for the GPU configurations and the frame-time model.
 */

#include <gtest/gtest.h>

#include "gpu/timing_model.hh"

using namespace gllc;

namespace
{

FrameWork
work()
{
    FrameWork w;
    w.shaderOps = 50'000'000;
    w.texelRequests = 2'000'000;
    w.pixelsShaded = 500'000;
    w.verticesShaded = 100'000;
    w.issueCycles = 100'000;
    return w;
}

LlcStats
stats(std::uint64_t accesses, std::uint64_t misses)
{
    LlcStats s;
    s.stream[0].accesses = accesses;
    s.stream[0].hits = accesses - misses;
    s.stream[0].misses = misses;
    return s;
}

std::vector<MemAccess>
missTrace(std::uint64_t n, std::uint32_t span)
{
    std::vector<MemAccess> t;
    for (std::uint64_t i = 0; i < n; ++i) {
        t.emplace_back(i * 7919 * kBlockBytes, StreamType::Texture,
                       false,
                       static_cast<std::uint32_t>(i * span / n));
    }
    return t;
}

} // namespace

TEST(GpuConfig, BaselineMatchesSection4)
{
    const GpuConfig c = GpuConfig::baseline();
    EXPECT_EQ(c.shaderCores, 96u);
    EXPECT_EQ(c.threadsPerCore, 8u);
    EXPECT_EQ(c.totalThreads(), 768u);
    EXPECT_EQ(c.samplers, 12u);
    EXPECT_DOUBLE_EQ(c.coreClockGhz, 1.6);
    EXPECT_DOUBLE_EQ(c.llcClockGhz, 4.0);
    EXPECT_EQ(c.llcCapacityBytes, 8ull << 20);
    EXPECT_EQ(c.llcWays, 16u);
    EXPECT_EQ(c.llcBanks, 4u);
    EXPECT_EQ(c.dram.tCas, 15u);
}

TEST(GpuConfig, Variants)
{
    EXPECT_EQ(GpuConfig::baseline16M().llcCapacityBytes, 16ull << 20);
    EXPECT_EQ(GpuConfig::fastDram().dram.tCas, 10u);
    const GpuConfig weak = GpuConfig::lessAggressive();
    EXPECT_EQ(weak.totalThreads(), 512u);
    EXPECT_EQ(weak.samplers, 8u);
}

TEST(Timing, ComputeBoundWithoutMemoryTraffic)
{
    const FrameTiming t =
        timeFrame(work(), stats(0, 0), {}, GpuConfig::baseline());
    EXPECT_GT(t.computeCycles, 0.0);
    EXPECT_DOUBLE_EQ(t.dramCycles, 0.0);
    EXPECT_GE(t.frameCycles, t.computeCycles);
    EXPECT_GT(t.fps, 0.0);
}

TEST(Timing, MoreMissesNeverFaster)
{
    const GpuConfig gpu = GpuConfig::baseline();
    const FrameTiming light = timeFrame(
        work(), stats(1'000'000, 50'000), missTrace(50'000, 100'000),
        gpu);
    const FrameTiming heavy = timeFrame(
        work(), stats(1'000'000, 400'000), missTrace(400'000, 100'000),
        gpu);
    EXPECT_GE(heavy.frameCycles, light.frameCycles);
    EXPECT_LE(heavy.fps, light.fps);
}

TEST(Timing, FasterDramNeverSlower)
{
    const auto trace = missTrace(300'000, 100'000);
    const FrameTiming slow = timeFrame(
        work(), stats(1'000'000, 300'000), trace,
        GpuConfig::baseline());
    const FrameTiming fast = timeFrame(
        work(), stats(1'000'000, 300'000), trace,
        GpuConfig::fastDram());
    EXPECT_LE(fast.frameCycles, slow.frameCycles);
}

TEST(Timing, WeakerGpuSlowerOnComputeBoundFrames)
{
    const FrameTiming strong =
        timeFrame(work(), stats(1000, 10), missTrace(10, 1000),
                  GpuConfig::baseline());
    const FrameTiming weak =
        timeFrame(work(), stats(1000, 10), missTrace(10, 1000),
                  GpuConfig::lessAggressive());
    EXPECT_GT(weak.frameCycles, strong.frameCycles);
}

TEST(Timing, WeakerGpuLessMemorySensitive)
{
    // Section 5.4: the weaker GPU's internal bottlenecks shrink the
    // relative benefit of saving misses.
    const GpuConfig strong = GpuConfig::baseline();
    const GpuConfig weak = GpuConfig::lessAggressive();
    const auto heavy_trace = missTrace(400'000, 100'000);
    const auto light_trace = missTrace(300'000, 100'000);
    const LlcStats heavy = stats(1'000'000, 400'000);
    const LlcStats light = stats(1'000'000, 300'000);

    const double strong_gain =
        timeFrame(work(), heavy, heavy_trace, strong).frameCycles
        / timeFrame(work(), light, light_trace, strong).frameCycles;
    const double weak_gain =
        timeFrame(work(), heavy, heavy_trace, weak).frameCycles
        / timeFrame(work(), light, light_trace, weak).frameCycles;
    EXPECT_GT(strong_gain, weak_gain);
}

TEST(Timing, SamplerBoundScalesWithTexels)
{
    FrameWork w = work();
    w.texelRequests = 48'000'000;
    const FrameTiming t =
        timeFrame(w, stats(0, 0), {}, GpuConfig::baseline());
    // 48e6 texels / (12 samplers x 4/cycle) = 1e6 cycles.
    EXPECT_NEAR(t.samplerCycles, 1e6, 1.0);
}

TEST(Timing, RowHitRateReported)
{
    // Sequential blocks produce lots of row hits.
    std::vector<MemAccess> seq;
    for (Addr i = 0; i < 10000; ++i)
        seq.emplace_back(i * kBlockBytes, StreamType::Texture, false,
                         static_cast<std::uint32_t>(i));
    const FrameTiming t = timeFrame(work(), stats(10000, 10000), seq,
                                    GpuConfig::baseline());
    EXPECT_GT(t.rowHitRate, 0.8);
}

TEST(Timing, FpsInverseOfFrameCycles)
{
    const FrameTiming t =
        timeFrame(work(), stats(1000, 100), missTrace(100, 1000),
                  GpuConfig::baseline());
    EXPECT_NEAR(t.fps * t.frameCycles, 1.6e9, 1.6e9 * 1e-9);
}
