/**
 * @file
 * Tests for the render-cache complex front end.
 */

#include <gtest/gtest.h>

#include "rcache/render_caches.hh"

using namespace gllc;

namespace
{

RenderCacheConfig
tinyConfig()
{
    RenderCacheConfig c;
    return c.scaled(16);
}

Addr
block(Addr n)
{
    return n * kBlockBytes;
}

} // namespace

TEST(RenderCaches, StreamsAreTaggedBySource)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.vertexIndexRead(block(1), 0, out);
    rcc.vertexRead(block(100), 0, out);
    rcc.hizAccess(block(200), false, 0, out);
    rcc.zAccess(block(300), false, 0, out);
    rcc.stencilAccess(block(400), false, 0, out);
    rcc.textureRead(block(500), 0, 0, out);
    rcc.otherRead(block(600), 0, out);

    ASSERT_EQ(out.size(), 7u);
    EXPECT_EQ(out[0].stream, StreamType::Vertex);
    EXPECT_EQ(out[1].stream, StreamType::Vertex);
    EXPECT_EQ(out[2].stream, StreamType::HiZ);
    EXPECT_EQ(out[3].stream, StreamType::Z);
    EXPECT_EQ(out[4].stream, StreamType::Stencil);
    EXPECT_EQ(out[5].stream, StreamType::Texture);
    EXPECT_EQ(out[6].stream, StreamType::Other);
}

TEST(RenderCaches, ColorStreamSelectable)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.colorAccess(block(1), false, StreamType::RenderTarget, 0, out);
    rcc.colorAccess(block(2), false, StreamType::Display, 0, out);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].stream, StreamType::RenderTarget);
    EXPECT_EQ(out[1].stream, StreamType::Display);
}

TEST(RenderCaches, NearReuseIsFiltered)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.zAccess(block(7), false, 0, out);
    const std::size_t after_first = out.size();
    rcc.zAccess(block(7), true, 0, out);   // hit, no new traffic
    rcc.zAccess(block(7), false, 0, out);  // hit
    EXPECT_EQ(out.size(), after_first);
    EXPECT_EQ(rcc.zStats().hits, 2u);
}

TEST(RenderCaches, PassBoundaryFlushesColorAndDepth)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.colorAccess(block(1), true, StreamType::RenderTarget, 0, out);
    rcc.zAccess(block(2), true, 0, out);
    rcc.hizAccess(block(3), true, 0, out);
    out.clear();

    rcc.passBoundary(50, out);
    // Three dirty blocks written back.
    EXPECT_EQ(out.size(), 3u);
    for (const MemAccess &a : out)
        EXPECT_TRUE(a.isWrite);

    // Afterwards the caches are cold again.
    out.clear();
    rcc.zAccess(block(2), false, 0, out);
    EXPECT_EQ(out.size(), 1u);
}

TEST(RenderCaches, PassBoundaryLeavesTextureHierarchyWarm)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.textureRead(block(9), 0, 0, out);
    out.clear();
    rcc.passBoundary(0, out);
    out.clear();
    rcc.textureRead(block(9), 0, 0, out);
    EXPECT_TRUE(out.empty());  // still cached across the pass
}

TEST(RenderCaches, FrameBoundaryColdsEverything)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.textureRead(block(9), 0, 0, out);
    rcc.vertexRead(block(50), 0, out);
    out.clear();
    rcc.frameBoundary(0, out);
    out.clear();
    rcc.textureRead(block(9), 0, 0, out);
    rcc.vertexRead(block(50), 0, out);
    EXPECT_EQ(out.size(), 2u);  // both cold again
}

TEST(RenderCaches, WritebackKeepsProducerStream)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    rcc.colorAccess(block(1), true, StreamType::Display, 0, out);
    out.clear();
    rcc.passBoundary(0, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].stream, StreamType::Display);
}

TEST(RenderCaches, ScaledConfigHasFloors)
{
    RenderCacheConfig c;
    const RenderCacheConfig s = c.scaled(1024);
    EXPECT_GE(s.zBlocks, 48u);
    EXPECT_GE(s.rtBlocks, 24u);
    EXPECT_GE(s.vtxIndexBlocks, 4u);
    EXPECT_GE(s.texture.l3Blocks, 96u);
    // Scale 1 is the identity.
    const RenderCacheConfig id = c.scaled(1);
    EXPECT_EQ(id.zBlocks, c.zBlocks);
}

TEST(RenderCaches, StatsAccumulate)
{
    RenderCacheComplex rcc(tinyConfig());
    std::vector<MemAccess> out;
    for (int i = 0; i < 5; ++i)
        rcc.colorAccess(block(1), true, StreamType::RenderTarget, 0,
                        out);
    EXPECT_EQ(rcc.rtStats().accesses, 5u);
    EXPECT_EQ(rcc.rtStats().hits, 4u);
}
