/**
 * @file
 * Unit tests for surfaces and tiled address layouts.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/surfaces.hh"

using namespace gllc;

TEST(Surface, TileEdgeByElementSize)
{
    GpuMemory mem(1);
    const Surface color = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "c", 64, 64, 4);
    EXPECT_EQ(color.tileEdge(), 4u);
    const Surface stencil = Surface::make2D(
        mem, SurfaceKind::StencilBuffer, "s", 64, 64, 1);
    EXPECT_EQ(stencil.tileEdge(), 8u);
}

TEST(Surface, SizeMatchesTileGrid)
{
    GpuMemory mem(1);
    // 64x64 4 B texels: 16x16 tiles of 64 B = 16 KB.
    const Surface s = Surface::make2D(
        mem, SurfaceKind::StaticTexture, "t", 64, 64, 4);
    EXPECT_EQ(s.bytes(), 16u * 1024);
    EXPECT_EQ(s.blockCount(), 256u);
}

TEST(Surface, ElementsInOneTileShareBlock)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "t", 64, 64, 4);
    const Addr a = s.tileAddress(0, 0);
    EXPECT_EQ(s.tileAddress(3, 3), a);
    EXPECT_NE(s.tileAddress(4, 0), a);
    EXPECT_NE(s.tileAddress(0, 4), a);
}

TEST(Surface, TilesHaveDistinctBlocks)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "t", 32, 32, 4);
    std::set<Addr> blocks;
    for (std::uint32_t y = 0; y < 32; y += 4)
        for (std::uint32_t x = 0; x < 32; x += 4)
            blocks.insert(s.tileAddress(x, y));
    EXPECT_EQ(blocks.size(), 64u);
}

TEST(Surface, AddressesStayInBounds)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "t", 100, 60, 4);
    // Out-of-range coordinates clamp instead of escaping.
    const Addr a = s.tileAddress(1000, 1000);
    EXPECT_GE(a, s.base());
    EXPECT_LT(a, s.base() + s.bytes());
}

TEST(Surface, NonMultipleDimensionsRoundUp)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "t", 5, 5, 4);
    // 2x2 tiles.
    EXPECT_EQ(s.blockCount(), 4u);
    EXPECT_EQ(s.tileAddress(4, 4),
              s.base() + 3 * kBlockBytes);
}

TEST(Surface, LinearBuffer)
{
    GpuMemory mem(1);
    const Surface s = Surface::makeLinear(
        mem, SurfaceKind::VertexBuffer, "vb", 1000);
    EXPECT_EQ(s.bytes(), 1024u);  // rounded to blocks
    EXPECT_EQ(s.linearAddress(0), s.base());
    EXPECT_EQ(s.linearAddress(999), s.base() + 999);
    // Past-the-end clamps.
    EXPECT_EQ(s.linearAddress(5000), s.base() + s.bytes() - 1);
}

TEST(Surface, RowMajorTileOrder)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::RenderTarget, "t", 16, 16, 4);
    // 4 tiles per row: tile (0,1) starts one row of tiles in.
    EXPECT_EQ(s.tileAddress(0, 4), s.base() + 4 * kBlockBytes);
    EXPECT_EQ(s.tileAddress(4, 0), s.base() + 1 * kBlockBytes);
}

TEST(Surface, KindAndNamePreserved)
{
    GpuMemory mem(1);
    const Surface s = Surface::make2D(
        mem, SurfaceKind::Depth, "depth0", 16, 16, 4);
    EXPECT_EQ(s.kind(), SurfaceKind::Depth);
    EXPECT_EQ(s.name(), "depth0");
    EXPECT_EQ(s.width(), 16u);
    EXPECT_EQ(s.height(), 16u);
}
