/**
 * @file
 * Tests for the invariant-audit layer (src/common/audit.hh).
 *
 * Two halves: positive tests show the auditors are silent on correct
 * state and that an audited replay is bit-identical to an unaudited
 * one; death tests corrupt policy/cache state through the debug
 * hooks and assert the audit aborts with the right check name in the
 * structured report.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cache/banked_llc.hh"
#include "cache/policy/belady.hh"
#include "cache/policy/drrip.hh"
#include "cache/policy/gs_drrip.hh"
#include "cache/policy/ship_mem.hh"
#include "cache/rrip.hh"
#include "common/audit.hh"
#include "common/rng.hh"
#include "core/gspc_family.hh"
#include "core/stream_counters.hh"

using namespace gllc;

namespace
{

/** Every test here runs with the audit layer forced on. */
class AuditTest : public ::testing::Test
{
  protected:
    void SetUp() override { setAuditActive(true); }
    void TearDown() override { setAuditActive(false); }
};

/** gtest runs suites named *DeathTest first; same fixture. */
using AuditDeathTest = AuditTest;

/** A small LLC (1 bank x 256 sets x 4 ways) for occupancy tests. */
LlcConfig
smallConfig()
{
    LlcConfig config;
    config.capacityBytes = 64 * 1024;
    config.ways = 4;
    config.banks = 1;
    return config;
}

/** Deterministic mixed-stream trace over a 1 MB footprint. */
std::vector<MemAccess>
makeTrace(std::size_t n, std::uint64_t seed)
{
    static const StreamType kStreams[] = {
        StreamType::Z, StreamType::Texture, StreamType::RenderTarget,
        StreamType::Other};
    Rng rng(seed);
    std::vector<MemAccess> trace;
    trace.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Addr addr = rng.below(1u << 20) & ~static_cast<Addr>(63);
        const StreamType s = kStreams[rng.below(4)];
        trace.emplace_back(addr, s, s == StreamType::RenderTarget);
    }
    return trace;
}

/** Replay a trace and return the final statistics. */
LlcStats
replay(const std::vector<MemAccess> &trace, const PolicyFactory &factory)
{
    BankedLlc llc(smallConfig(), factory);
    for (std::size_t i = 0; i < trace.size(); ++i)
        llc.access(trace[i], i);
    return llc.stats();
}

// ---------------------------------------------------------------
// Activation and context plumbing
// ---------------------------------------------------------------

TEST_F(AuditTest, SetAuditActiveToggles)
{
    EXPECT_TRUE(auditActive());
    setAuditActive(false);
    EXPECT_FALSE(auditActive());
    setAuditActive(true);
    EXPECT_TRUE(auditActive());
}

TEST_F(AuditTest, AuditScopeRestoresContext)
{
    auditContext() = AuditContext{};
    auditContext().policy = "outer";
    auditContext().frame = 7;
    {
        AuditScope scope;
        auditContext().policy = "inner";
        auditContext().frame = 99;
        auditContext().set = 12;
    }
    EXPECT_EQ(auditContext().policy, "outer");
    EXPECT_EQ(auditContext().frame, 7);
    EXPECT_EQ(auditContext().set, -1);
    auditContext() = AuditContext{};
}

TEST_F(AuditTest, AccessPopulatesContext)
{
    AuditScope scope;
    BankedLlc llc(smallConfig(), DrripPolicy::factory());
    const MemAccess a(0x1040, StreamType::Texture, false);
    llc.access(a, 17);
    EXPECT_EQ(auditContext().accessIndex, 17);
    EXPECT_EQ(auditContext().stream, streamName(StreamType::Texture));
    EXPECT_EQ(auditContext().bank, 0);
    EXPECT_GE(auditContext().set, 0);
}

TEST_F(AuditDeathTest, ReportNamesCellAndAccess)
{
    AuditScope scope;
    auditContext().app = "unittest";
    auditContext().frame = 3;
    auditContext().policy = "GSPC";
    auditContext().accessIndex = 41;
    EXPECT_DEATH(auditFail("TestComp", "test-check", "detail %d", 42),
                 "component: TestComp  check: test-check");
    EXPECT_DEATH(auditFail("TestComp", "test-check", "detail %d", 42),
                 "app=unittest frame=3 policy=GSPC");
    EXPECT_DEATH(auditFail("TestComp", "test-check", "detail %d", 42),
                 "detail 42");
}

// ---------------------------------------------------------------
// RRPV range
// ---------------------------------------------------------------

TEST_F(AuditTest, CleanRripStatePassesAudit)
{
    RripState rrip(2);
    rrip.configure(4, 4);
    rrip.set(0, 0, 3);
    rrip.set(0, 1, 0);
    rrip.auditAll("TestPolicy");  // must not die
}

TEST_F(AuditDeathTest, CorruptRrpvFailsRangeCheck)
{
    RripState rrip(2);
    rrip.configure(4, 4);
    rrip.set(0, 1, 7);  // 7 > max 3 for a 2-bit policy
    EXPECT_DEATH(rrip.auditSet(0, "TestPolicy"), "rrpv-range");
    EXPECT_DEATH(rrip.auditSet(0, "TestPolicy"),
                 "holds rrpv 7 > max 3");
}

TEST_F(AuditDeathTest, VictimSelectionAuditsItsSetFirst)
{
    // A wrapped RRPV would make the aging loop spin; the audit must
    // catch it before victim selection walks the set.
    RripState rrip(2);
    rrip.configure(4, 4);
    rrip.set(0, 2, 200);
    EXPECT_DEATH(rrip.selectVictim(0), "rrpv-range");
}

// ---------------------------------------------------------------
// Figure-10 epoch FSM
// ---------------------------------------------------------------

TEST_F(AuditTest, LegalBlockTransitionTable)
{
    const auto tex = PolicyStream::Texture;
    const auto rt = PolicyStream::RenderTarget;
    const auto z = PolicyStream::Z;

    // Fills reset the state regardless of the previous occupant.
    EXPECT_TRUE(legalBlockTransition(BlockState::RenderTarget,
                                     BlockState::TexE0, tex, true));
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE2Plus,
                                     BlockState::RenderTarget, rt, true));
    EXPECT_FALSE(legalBlockTransition(BlockState::TexE0,
                                      BlockState::TexE1, tex, true));

    // Texture hits walk RT->E0->E1->E>=2 with E>=2 absorbing.
    EXPECT_TRUE(legalBlockTransition(BlockState::RenderTarget,
                                     BlockState::TexE0, tex, false));
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE0,
                                     BlockState::TexE1, tex, false));
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE1,
                                     BlockState::TexE2Plus, tex, false));
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE2Plus,
                                     BlockState::TexE2Plus, tex, false));
    EXPECT_FALSE(legalBlockTransition(BlockState::TexE1,
                                      BlockState::TexE0, tex, false));
    EXPECT_FALSE(legalBlockTransition(BlockState::TexE0,
                                      BlockState::TexE2Plus, tex, false));

    // RT hits mark the block a render target; Z hits change nothing.
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE1,
                                     BlockState::RenderTarget, rt, false));
    EXPECT_TRUE(legalBlockTransition(BlockState::TexE1,
                                     BlockState::TexE1, z, false));
    EXPECT_FALSE(legalBlockTransition(BlockState::TexE1,
                                      BlockState::TexE0, z, false));
}

TEST_F(AuditDeathTest, IllegalEpochTransitionFailsAudit)
{
    EXPECT_DEATH(auditBlockTransition(BlockState::TexE1,
                                      BlockState::TexE0,
                                      PolicyStream::Texture, false),
                 "epoch-fsm");
    EXPECT_DEATH(auditBlockTransition(BlockState::TexE1,
                                      BlockState::TexE0,
                                      PolicyStream::Texture, false),
                 "E1 -> E0");
}

TEST_F(AuditDeathTest, CorruptBlockStateEncodingFailsAudit)
{
    GspcFamilyPolicy policy(GspcVariant::Gspc);
    policy.configure(256, 4);
    policy.debugSetBlockStateRaw(3, 2, 0x7);
    EXPECT_DEATH(policy.auditInvariants(3), "block-state");
}

// ---------------------------------------------------------------
// Learning counters
// ---------------------------------------------------------------

TEST_F(AuditTest, CleanCountersPassAudit)
{
    StreamReuseCounters counters;
    for (int i = 0; i < 1000; ++i) {
        counters.recordZFill();
        counters.recordTexHitEpoch(0);
        counters.recordRtProduce();
        counters.recordAccess();
    }
    counters.auditInvariants("GspcFamily");  // must not die
}

TEST_F(AuditDeathTest, CorruptCounterFailsRangeCheck)
{
    StreamReuseCounters counters;  // 8-bit counters, max 255
    counters.debugForceCounter("PROD", 300);
    EXPECT_DEATH(counters.auditInvariants("GspcFamily"),
                 "counter PROD holds 300 > max 255");
}

TEST_F(AuditDeathTest, CorruptCounterInsidePolicyFailsAudit)
{
    GspcFamilyPolicy policy(GspcVariant::Gspc);
    policy.configure(256, 4);
    policy.debugCounters().debugForceCounter("HIT_TEX_E1", 999);
    EXPECT_DEATH(policy.auditInvariants(0), "counter-range");
}

// ---------------------------------------------------------------
// Set-dueling state
// ---------------------------------------------------------------

TEST_F(AuditTest, DuelFamiliesAreDisjointForAllGroupCounts)
{
    auditDuelFamilies(1, "DrripPolicy");  // must not die
    auditDuelFamilies(static_cast<unsigned>(kNumPolicyStreams),
                      "GsDrripPolicy");
}

TEST_F(AuditDeathTest, CorruptDrripPselFailsAudit)
{
    DrripPolicy policy;
    policy.configure(256, 4);
    policy.debugPsel().debugForceValue(100000);  // 10-bit max 1023
    EXPECT_DEATH(policy.auditInvariants(0), "psel-range");
}

TEST_F(AuditDeathTest, CorruptGsDrripStreamPselFailsAudit)
{
    GsDrripPolicy policy;
    policy.configure(256, 4);
    policy.debugPsel(PolicyStream::Texture).debugForceValue(4096);
    EXPECT_DEATH(policy.auditInvariants(0), "psel-range");
}

// ---------------------------------------------------------------
// SHiP signatures and Belady future knowledge
// ---------------------------------------------------------------

TEST_F(AuditDeathTest, CorruptShipSignatureFailsAudit)
{
    ShipMemPolicy policy;
    policy.configure(256, 4);
    policy.debugForceSignature(0, 0, 0x7fff);  // 14-bit max 0x3fff
    EXPECT_DEATH(policy.auditInvariants(0), "signature-range");
}

TEST_F(AuditTest, BeladyAcceptsMonotonicFutureIndices)
{
    BeladyPolicy policy;
    policy.configure(256, 4);
    const MemAccess a(0x0, StreamType::Texture, false);
    policy.onFill(0, 0, AccessInfo{&a, 10, 20});
    policy.onHit(0, 0, AccessInfo{&a, 20, kNever});  // must not die
}

TEST_F(AuditDeathTest, BeladyRejectsPastFutureIndex)
{
    BeladyPolicy policy;
    policy.configure(256, 4);
    const MemAccess a(0x0, StreamType::Texture, false);
    // Claims the next use of this block happened 50 accesses ago.
    EXPECT_DEATH(policy.onFill(0, 0, AccessInfo{&a, 100, 50}),
                 "future-monotonic");
}

// ---------------------------------------------------------------
// LLC occupancy
// ---------------------------------------------------------------

TEST_F(AuditDeathTest, DuplicateTagFailsAudit)
{
    BankedLlc llc(smallConfig(), DrripPolicy::factory());
    const MemAccess a(0x0, StreamType::Other, false);
    llc.access(a, 0);  // tag 0 now resident in set 0 way 0
    llc.debugCorruptEntry(0, 0, 1, 0, true);
    EXPECT_DEATH(llc.auditAll(), "duplicate-tag");
}

TEST_F(AuditDeathTest, MisplacedTagFailsGeometryCheck)
{
    BankedLlc llc(smallConfig(), DrripPolicy::factory());
    // Tag 1 belongs to set 1; plant it in set 0.
    llc.debugCorruptEntry(0, 0, 0, 1, true);
    EXPECT_DEATH(llc.auditAll(), "tag-geometry");
}

TEST_F(AuditDeathTest, AccessPathCatchesCorruption)
{
    // Corruption must be caught by the per-access audit hook, not
    // only by an explicit auditAll() call.
    BankedLlc llc(smallConfig(), DrripPolicy::factory());
    const MemAccess first(0x0, StreamType::Other, false);
    llc.access(first, 0);
    llc.debugCorruptEntry(0, 0, 1, 0, true);
    const MemAccess again(0x0, StreamType::Other, false);
    EXPECT_DEATH(llc.access(again, 1), "duplicate-tag");
}

// ---------------------------------------------------------------
// Read-only guarantee: audited replay is bit-identical
// ---------------------------------------------------------------

TEST_F(AuditTest, AuditedReplayIsBitIdentical)
{
    const std::vector<MemAccess> trace = makeTrace(20000, 0x5eed);
    const PolicyFactory factory =
        GspcFamilyPolicy::factory(GspcVariant::Gspc);

    setAuditActive(false);
    const LlcStats plain = replay(trace, factory);
    setAuditActive(true);
    const LlcStats audited = replay(trace, factory);

    for (std::size_t s = 0; s < kNumStreams; ++s) {
        EXPECT_EQ(plain.stream[s].accesses, audited.stream[s].accesses);
        EXPECT_EQ(plain.stream[s].hits, audited.stream[s].hits);
        EXPECT_EQ(plain.stream[s].misses, audited.stream[s].misses);
        EXPECT_EQ(plain.stream[s].bypasses, audited.stream[s].bypasses);
    }
    EXPECT_EQ(plain.writebacks, audited.writebacks);
    EXPECT_EQ(plain.evictions, audited.evictions);
}

TEST_F(AuditTest, AuditedReplayIsCleanForEveryPolicyFamily)
{
    const std::vector<MemAccess> trace = makeTrace(5000, 0xcafe);
    const PolicyFactory factories[] = {
        DrripPolicy::factory(),
        GsDrripPolicy::factory(),
        ShipMemPolicy::factory(),
        GspcFamilyPolicy::factory(GspcVariant::Gspztc),
        GspcFamilyPolicy::factory(GspcVariant::GspztcTse),
        GspcFamilyPolicy::factory(GspcVariant::Gspc),
    };
    for (const auto &factory : factories) {
        BankedLlc llc(smallConfig(), factory);
        for (std::size_t i = 0; i < trace.size(); ++i)
            llc.access(trace[i], i);
        llc.auditAll();  // must not die
    }
}

} // namespace
