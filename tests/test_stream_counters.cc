/**
 * @file
 * Unit tests for the per-bank GSPC learning counters (Section 3).
 */

#include <gtest/gtest.h>

#include "core/stream_counters.hh"

using namespace gllc;

TEST(Counters, StartAtZero)
{
    const StreamReuseCounters c;
    EXPECT_EQ(c.fillZ(), 0u);
    EXPECT_EQ(c.hitZ(), 0u);
    EXPECT_EQ(c.fillTexAgg(), 0u);
    EXPECT_EQ(c.fillTex(0), 0u);
    EXPECT_EQ(c.fillTex(1), 0u);
    EXPECT_EQ(c.prod(), 0u);
    EXPECT_EQ(c.cons(), 0u);
    EXPECT_EQ(c.acc(), 0u);
}

TEST(Counters, EventRecording)
{
    StreamReuseCounters c;
    c.recordZFill();
    c.recordZFill();
    c.recordZHit();
    c.recordTexFillAgg();
    c.recordTexHitAgg();
    c.recordTexFillEpoch(0);
    c.recordTexFillEpoch(1);
    c.recordTexHitEpoch(1);
    c.recordRtProduce();
    c.recordRtConsume();
    EXPECT_EQ(c.fillZ(), 2u);
    EXPECT_EQ(c.hitZ(), 1u);
    EXPECT_EQ(c.fillTexAgg(), 1u);
    EXPECT_EQ(c.hitTexAgg(), 1u);
    EXPECT_EQ(c.fillTex(0), 1u);
    EXPECT_EQ(c.fillTex(1), 1u);
    EXPECT_EQ(c.hitTex(1), 1u);
    EXPECT_EQ(c.prod(), 1u);
    EXPECT_EQ(c.cons(), 1u);
}

TEST(Counters, EightBitSaturation)
{
    StreamReuseCounters c;
    for (int i = 0; i < 300; ++i)
        c.recordZFill();
    EXPECT_EQ(c.fillZ(), 255u);
}

TEST(Counters, AccSaturationHalvesEverything)
{
    StreamReuseCounters c;
    for (int i = 0; i < 100; ++i) {
        c.recordZFill();
        c.recordTexFillEpoch(0);
        c.recordRtProduce();
    }
    EXPECT_EQ(c.fillZ(), 100u);
    // ACC(ALL) is 7 bits: it saturates at 127 accesses and the next
    // recordAccess halves the stream counters and resets ACC.
    for (int i = 0; i < 127; ++i)
        c.recordAccess();
    EXPECT_EQ(c.acc(), 0u);  // saturated and reset
    EXPECT_EQ(c.fillZ(), 50u);
    EXPECT_EQ(c.fillTex(0), 50u);
    EXPECT_EQ(c.prod(), 50u);
}

TEST(Counters, ZDistantThreshold)
{
    StreamReuseCounters c;
    // FILL(Z) > t*HIT(Z): with 9 fills, 1 hit, t=8 -> 9 > 8: distant.
    for (int i = 0; i < 9; ++i)
        c.recordZFill();
    c.recordZHit();
    EXPECT_TRUE(c.zDistant(8));
    // One more hit: 9 > 16 is false.
    c.recordZHit();
    EXPECT_FALSE(c.zDistant(8));
    // Lower t makes condemnation harder to avoid... t=2: 9 > 4 true.
    EXPECT_TRUE(c.zDistant(2));
}

TEST(Counters, ZDistantWithZeroHitsAndFills)
{
    StreamReuseCounters c;
    EXPECT_FALSE(c.zDistant(8));  // 0 > 0 is false
    c.recordZFill();
    EXPECT_TRUE(c.zDistant(8));   // 1 > 0
}

TEST(Counters, TexThresholdsSeparateEpochs)
{
    StreamReuseCounters c;
    for (int i = 0; i < 10; ++i)
        c.recordTexFillEpoch(0);
    for (int i = 0; i < 2; ++i)
        c.recordTexHitEpoch(0);
    c.recordTexFillEpoch(1);
    c.recordTexHitEpoch(1);
    // E0: 10 > 8*2 false -> not distant; E1: 1 > 8 false.
    EXPECT_FALSE(c.texDistantEpoch(0, 8));
    EXPECT_FALSE(c.texDistantEpoch(1, 8));
    // At t=4: E0 10 > 8 -> distant; E1 1 > 4 false.
    EXPECT_TRUE(c.texDistantEpoch(0, 4));
    EXPECT_FALSE(c.texDistantEpoch(1, 4));
}

TEST(Counters, TexAggregateThresholdIndependent)
{
    StreamReuseCounters c;
    for (int i = 0; i < 5; ++i)
        c.recordTexFillAgg();
    EXPECT_TRUE(c.texDistantAgg(8));
    c.recordTexHitAgg();
    EXPECT_FALSE(c.texDistantAgg(8));  // 5 > 8 false
}

TEST(Counters, RtProtectionBands)
{
    // Table 5: PROD > 16*CONS -> Distant; 16*CONS >= PROD > 8*CONS
    // -> Intermediate; else Protect.
    StreamReuseCounters c;
    // CONS = 0, PROD = 0: 0 > 0 false; 0 > 0 false -> Protect.
    EXPECT_EQ(c.rtProtection(), RtProtection::Protect);

    for (int i = 0; i < 17; ++i)
        c.recordRtProduce();
    c.recordRtConsume();
    // PROD=17, CONS=1: 17 > 16 -> Distant.
    EXPECT_EQ(c.rtProtection(), RtProtection::Distant);

    c.recordRtConsume();
    // PROD=17, CONS=2: 17 > 32 false; 17 > 16 -> Intermediate.
    EXPECT_EQ(c.rtProtection(), RtProtection::Intermediate);

    c.recordRtConsume();
    // PROD=17, CONS=3: 17 > 24 false -> Protect.
    EXPECT_EQ(c.rtProtection(), RtProtection::Protect);
}

TEST(Counters, RtProtectionBoundaryExactlyEight)
{
    StreamReuseCounters c;
    for (int i = 0; i < 8; ++i)
        c.recordRtProduce();
    c.recordRtConsume();
    // PROD = 8 = 8*CONS: "PROD > 8*CONS" is false -> Protect.
    EXPECT_EQ(c.rtProtection(), RtProtection::Protect);
}
