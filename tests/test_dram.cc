/**
 * @file
 * Unit tests for the DDR3 timing model.
 */

#include <gtest/gtest.h>

#include "dram/dram_model.hh"

using namespace gllc;

namespace
{

std::vector<DramRequest>
reqs(std::initializer_list<Addr> blocks, std::uint64_t spacing = 0)
{
    std::vector<DramRequest> r;
    std::uint64_t t = 0;
    for (const Addr b : blocks) {
        r.push_back(DramRequest{b * kBlockBytes, t, false});
        t += spacing;
    }
    return r;
}

} // namespace

TEST(DramConfig, Presets)
{
    const DramConfig base = DramConfig::ddr3_1600();
    EXPECT_EQ(base.tCas, 15u);
    EXPECT_EQ(base.tRcd, 15u);
    EXPECT_EQ(base.tRp, 15u);
    EXPECT_DOUBLE_EQ(base.clockMhz, 800.0);
    EXPECT_EQ(base.channels, 2u);
    EXPECT_EQ(base.banksPerChannel, 8u);
    EXPECT_EQ(base.burstCycles(), 4u);

    const DramConfig fast = DramConfig::ddr3_1867();
    EXPECT_EQ(fast.tCas, 10u);
    EXPECT_DOUBLE_EQ(fast.clockMhz, 933.0);

    const DramConfig gddr = DramConfig::gddr5();
    EXPECT_EQ(gddr.channels, 4u);
    EXPECT_EQ(gddr.banksPerChannel, 16u);
    EXPECT_EQ(gddr.rowBytes, 2048u);
    // Double the DDR3-1600 peak bandwidth per cycle.
    EXPECT_DOUBLE_EQ(gddr.peakBytesPerCycle(), 64.0);
}

TEST(Dram, Gddr5HigherPeakThroughputOnParallelStreams)
{
    // Spread requests across channels/banks: GDDR5's 4 channels
    // finish a bandwidth-bound batch in fewer *nanoseconds* than
    // dual-channel DDR3 despite longer latencies.
    std::vector<DramRequest> r;
    for (Addr i = 0; i < 4000; ++i)
        r.push_back(DramRequest{i * kBlockBytes, 0, false});
    DramModel ddr3(DramConfig::ddr3_1600());
    DramModel gddr(DramConfig::gddr5());
    const double ddr3_ns =
        static_cast<double>(ddr3.simulate(r).finishCycle) / 0.8;
    const double gddr_ns =
        static_cast<double>(gddr.simulate(r).finishCycle) / 1.25;
    EXPECT_LT(gddr_ns, ddr3_ns);
}

TEST(DramMap, ChannelsInterleaveByBlock)
{
    const DramModel dram(DramConfig::ddr3_1600());
    EXPECT_EQ(dram.channelOf(0), 0u);
    EXPECT_EQ(dram.channelOf(64), 1u);
    EXPECT_EQ(dram.channelOf(128), 0u);
}

TEST(DramMap, RowHolds8KPerChannelStride)
{
    const DramModel dram(DramConfig::ddr3_1600());
    // Two blocks in the same channel within one row.
    EXPECT_EQ(dram.rowOf(0), dram.rowOf(128));
    EXPECT_EQ(dram.bankOf(0), dram.bankOf(128));
}

TEST(DramMap, BanksRotateAcrossRows)
{
    const DramModel dram(DramConfig::ddr3_1600());
    // One row spans rowBytes * channels of address space.
    const Addr next_row = 8192 * 2;
    EXPECT_NE(dram.bankOf(0), dram.bankOf(next_row));
}

TEST(Dram, SingleRequestLatency)
{
    DramModel dram(DramConfig::ddr3_1600());
    const DramStats s = dram.simulate(reqs({0}));
    // Cold bank: tRCD + tCAS + burst = 15 + 15 + 4.
    EXPECT_EQ(s.finishCycle, 34u);
    EXPECT_EQ(s.requests, 1u);
    EXPECT_EQ(s.rowMisses, 1u);
    EXPECT_EQ(s.totalLatency, 34u);
}

TEST(Dram, RowHitIsFasterThanRowMiss)
{
    DramModel dram(DramConfig::ddr3_1600());
    // Same row twice: second request is a row hit.
    const DramStats s = dram.simulate(reqs({0, 2}));
    EXPECT_EQ(s.rowHits, 1u);
    EXPECT_EQ(s.rowMisses, 1u);
    // Row hit pipelines: total far below two full activations.
    EXPECT_LT(s.finishCycle, 2u * 34u);
}

TEST(Dram, ConflictPaysPrecharge)
{
    const DramConfig config = DramConfig::ddr3_1600();
    DramModel dram(config);
    // Same channel + bank, different row: the second request must
    // precharge (tRP) then activate.
    const Addr blocks_per_row = config.rowBytes / kBlockBytes;
    const Addr conflict =
        blocks_per_row * config.channels * config.banksPerChannel;
    const DramStats s = dram.simulate(reqs({0, conflict}));
    EXPECT_EQ(s.rowMisses, 2u);
    // Request 2 queues behind the bank (ready at 19), pays
    // tRP + tRCD + tCAS and a burst: 19 + 15 + 15 + 15 + 4 = 68.
    EXPECT_EQ(s.finishCycle, 68u);
}

TEST(Dram, ChannelsWorkInParallel)
{
    DramModel dram(DramConfig::ddr3_1600());
    // Blocks 0 and 1 sit in different channels: both finish at the
    // single-request latency.
    const DramStats s = dram.simulate(reqs({0, 1}));
    EXPECT_EQ(s.finishCycle, 34u);
}

TEST(Dram, BusSerializesRowHitStream)
{
    DramModel dram(DramConfig::ddr3_1600());
    // Many row hits to one channel: throughput bounded by the burst
    // occupancy of the data bus (4 cycles each).
    std::vector<DramRequest> r;
    for (Addr i = 0; i < 64; ++i)
        r.push_back(DramRequest{i * 2 * kBlockBytes, 0, false});
    const DramStats s = dram.simulate(r);
    EXPECT_GE(s.finishCycle, 34u + 63u * 4u);
    EXPECT_EQ(s.busBusyCycles, 64u * 4u);
}

TEST(Dram, LateArrivalsShiftSchedule)
{
    DramModel dram(DramConfig::ddr3_1600());
    const DramStats s = dram.simulate(reqs({0, 2}, 1000));
    // Second request arrives at cycle 1000 and finds its row open.
    EXPECT_EQ(s.rowHits, 1u);
    EXPECT_EQ(s.finishCycle, 1000u + 15u + 4u);
}

TEST(Dram, ReadsAndWritesCounted)
{
    DramModel dram(DramConfig::ddr3_1600());
    std::vector<DramRequest> r;
    r.push_back(DramRequest{0, 0, false});
    r.push_back(DramRequest{64, 0, true});
    const DramStats s = dram.simulate(r);
    EXPECT_EQ(s.reads, 1u);
    EXPECT_EQ(s.writes, 1u);
}

TEST(Dram, AverageLatencyComputed)
{
    DramModel dram(DramConfig::ddr3_1600());
    const DramStats s = dram.simulate(reqs({0}));
    EXPECT_DOUBLE_EQ(s.averageLatency(), 34.0);
    const DramStats empty = dram.simulate({});
    EXPECT_DOUBLE_EQ(empty.averageLatency(), 0.0);
}

TEST(Dram, FasterPartFinishesSooner)
{
    std::vector<DramRequest> r;
    for (Addr i = 0; i < 200; ++i)
        r.push_back(DramRequest{i * 577 * kBlockBytes, i, false});

    DramModel slow(DramConfig::ddr3_1600());
    DramModel fast(DramConfig::ddr3_1867());
    EXPECT_LT(fast.simulate(r).finishCycle,
              slow.simulate(r).finishCycle);
}

TEST(Dram, WriteToReadTurnaroundCharged)
{
    DramModel dram(DramConfig::ddr3_1600());
    std::vector<DramRequest> r;
    // Same channel (even blocks): write then read.
    r.push_back(DramRequest{0, 0, true});
    r.push_back(DramRequest{2 * kBlockBytes, 0, false});
    const DramStats s = dram.simulate(r);
    EXPECT_EQ(s.turnarounds, 1u);

    // Read then write pays nothing extra.
    std::vector<DramRequest> rw;
    rw.push_back(DramRequest{0, 0, false});
    rw.push_back(DramRequest{2 * kBlockBytes, 0, true});
    const DramStats s2 = dram.simulate(rw);
    EXPECT_EQ(s2.turnarounds, 0u);
}

TEST(Dram, RefreshStallsLongSchedules)
{
    DramConfig config = DramConfig::ddr3_1600();
    DramModel dram(config);
    // Two requests straddling a tREFI boundary on one channel.
    std::vector<DramRequest> r;
    r.push_back(DramRequest{0, 0, false});
    r.push_back(DramRequest{2 * kBlockBytes, config.tRefi + 5, false});
    const DramStats s = dram.simulate(r);
    EXPECT_EQ(s.refreshes, 1u);
    // The refreshed channel closed its rows: the second request is a
    // row miss despite matching the open row.
    EXPECT_EQ(s.rowMisses, 2u);
}

TEST(Dram, RefreshDisabledWhenTRefiZero)
{
    DramConfig config = DramConfig::ddr3_1600();
    config.tRefi = 0;
    DramModel dram(config);
    std::vector<DramRequest> r;
    r.push_back(DramRequest{0, 0, false});
    r.push_back(DramRequest{2 * kBlockBytes, 100000, false});
    const DramStats s = dram.simulate(r);
    EXPECT_EQ(s.refreshes, 0u);
    EXPECT_EQ(s.rowHits, 1u);
}

TEST(DramDeath, ArrivalsMustBeMonotone)
{
#ifdef GLLC_DISABLE_ASSERTS
    GTEST_SKIP() << "GLLC_ASSERT compiled out (-DGLLC_ASSERTS=OFF)";
#else
    DramModel dram(DramConfig::ddr3_1600());
    std::vector<DramRequest> r;
    r.push_back(DramRequest{0, 10, false});
    r.push_back(DramRequest{64, 5, false});
    EXPECT_DEATH(dram.simulate(r), "");
#endif
}
