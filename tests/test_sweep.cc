/**
 * @file
 * Tests for the sweep engine (SweepConfig/SweepResult): serial and
 * parallel execution bit-identity, determinism across thread counts
 * and frame windows, the aggregation methods, and the CSV/JSON
 * export.  Fault injection, quarantine and checkpoint/resume live
 * in test_sweep_fault.cc.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "analysis/report.hh"
#include "analysis/sweep.hh"

using namespace gllc;

namespace
{

/** RAII environment setup: 2 frames at scale 8 keeps tests fast. */
class SweepEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::setenv("GLLC_FRAMES", "2", 1);
        ::setenv("GLLC_SCALE", "8", 1);
        ::unsetenv("GLLC_THREADS");
    }

    void
    TearDown() override
    {
        ::unsetenv("GLLC_FRAMES");
        ::unsetenv("GLLC_SCALE");
        ::unsetenv("GLLC_THREADS");
    }
};

/** Field-by-field bit-identity of two completed sweeps. */
void
expectCellsIdentical(const SweepResult &a, const SweepResult &b)
{
    ASSERT_EQ(a.cells().size(), b.cells().size());
    for (std::size_t i = 0; i < a.cells().size(); ++i) {
        const SweepCell &ca = a.cells()[i];
        const SweepCell &cb = b.cells()[i];
        EXPECT_EQ(ca.key.app, cb.key.app) << "cell " << i;
        EXPECT_EQ(ca.key.frameIndex, cb.key.frameIndex) << "cell " << i;
        EXPECT_EQ(ca.key.policy, cb.key.policy) << "cell " << i;

        const LlcStats &sa = ca.result.stats;
        const LlcStats &sb = cb.result.stats;
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            EXPECT_EQ(sa.stream[s].accesses, sb.stream[s].accesses);
            EXPECT_EQ(sa.stream[s].hits, sb.stream[s].hits);
            EXPECT_EQ(sa.stream[s].misses, sb.stream[s].misses);
            EXPECT_EQ(sa.stream[s].bypasses, sb.stream[s].bypasses);
        }
        EXPECT_EQ(sa.writebacks, sb.writebacks) << "cell " << i;
        EXPECT_EQ(sa.evictions, sb.evictions) << "cell " << i;

        const Characterization &cha = ca.result.characterization;
        const Characterization &chb = cb.result.characterization;
        EXPECT_EQ(cha.interTexHits, chb.interTexHits);
        EXPECT_EQ(cha.intraTexHits, chb.intraTexHits);
        EXPECT_EQ(cha.rtProductions, chb.rtProductions);
        EXPECT_EQ(cha.rtConsumptions, chb.rtConsumptions);
        EXPECT_EQ(cha.texEpochHits, chb.texEpochHits);
        EXPECT_EQ(cha.texReach, chb.texReach);
        EXPECT_EQ(cha.zReach, chb.zReach);

        EXPECT_EQ(ca.result.fills.counts, cb.result.fills.counts)
            << "cell " << i;
    }
}

} // namespace

TEST_F(SweepEnv, RunsEveryFramePolicyPair)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).run();
    EXPECT_EQ(sweep.cells().size(), 4u);  // 2 frames x 2 policies
    EXPECT_EQ(sweep.scale().linear, 8u);
    // 8 MB scaled by 1/64 -> 128 KB.
    EXPECT_EQ(sweep.llcConfig().capacityBytes, 128u * 1024);
}

TEST_F(SweepEnv, CellsAreInDeterministicSweepOrder)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).threads(2).run();
    ASSERT_EQ(sweep.cells().size(), 4u);
    // Frames in frame-set order, policies in configured order
    // within each frame, regardless of completion order.
    EXPECT_EQ(sweep.cells()[0].key.policy, "DRRIP");
    EXPECT_EQ(sweep.cells()[1].key.policy, "NRU");
    EXPECT_EQ(sweep.cells()[0].key.app, sweep.cells()[1].key.app);
    EXPECT_EQ(sweep.cells()[2].key.policy, "DRRIP");
    EXPECT_EQ(sweep.cells()[3].key.policy, "NRU");
}

TEST_F(SweepEnv, SerialAndParallelAreBitIdentical)
{
    // Random stresses per-replay RNG seeding, Belady the oracle.
    const std::vector<std::string> policies{"DRRIP", "GSPC+UCD",
                                            "Random", "Belady"};
    const SweepResult serial =
        SweepConfig().policies(policies).threads(1).run();
    for (const unsigned nthreads : {2u, 8u}) {
        const SweepResult parallel = SweepConfig()
                                         .policies(policies)
                                         .threads(nthreads)
                                         .run();
        EXPECT_EQ(parallel.threadsUsed(), nthreads);
        expectCellsIdentical(serial, parallel);
    }
}

TEST_F(SweepEnv, FrameWindowDoesNotChangeResults)
{
    const std::vector<std::string> policies{"DRRIP", "GSPC"};
    const SweepResult narrow = SweepConfig()
                                   .policies(policies)
                                   .threads(2)
                                   .frameWindow(1)
                                   .run();
    const SweepResult wide = SweepConfig()
                                 .policies(policies)
                                 .threads(2)
                                 .frameWindow(8)
                                 .run();
    expectCellsIdentical(narrow, wide);
}

TEST_F(SweepEnv, ThreadsEnvKnobIsHonoured)
{
    ::setenv("GLLC_THREADS", "3", 1);
    const SweepResult env_run =
        SweepConfig().policies({"DRRIP"}).run();
    EXPECT_EQ(env_run.threadsUsed(), 3u);
    ::setenv("GLLC_THREADS", "1", 1);
    const SweepResult serial =
        SweepConfig().policies({"DRRIP"}).run();
    EXPECT_EQ(serial.threadsUsed(), 1u);
    expectCellsIdentical(serial, env_run);
}

TEST_F(SweepEnv, SweepThreadsResolutionOrder)
{
    EXPECT_EQ(sweepThreads(5), 5u);
    ::setenv("GLLC_THREADS", "3", 1);
    EXPECT_EQ(sweepThreads(), 3u);
    EXPECT_EQ(sweepThreads(2), 2u);
    ::unsetenv("GLLC_THREADS");
    EXPECT_GE(sweepThreads(), 1u);
}

TEST_F(SweepEnv, TotalsGroupByApp)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).run();
    const auto totals = sweep.totalsByApp(missMetric);
    EXPECT_EQ(totals.size(), 2u);  // two apps (round-robin frame 0s)
    for (const auto &[app, row] : totals) {
        EXPECT_EQ(row.size(), 2u);
        EXPECT_GT(row.at("DRRIP"), 0.0);
    }
}

TEST_F(SweepEnv, NormalizedMeanOfBaselineIsOne)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).run();
    const auto means = sweep.meanNormalized(missMetric, "DRRIP");
    EXPECT_DOUBLE_EQ(means.at("DRRIP"), 1.0);
    EXPECT_GT(means.at("NRU"), 0.5);
    EXPECT_LT(means.at("NRU"), 2.0);
}

TEST_F(SweepEnv, AppOrderFollowsTable1)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP"}).run();
    const auto order = sweep.appOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], paperApps()[0].name);
    EXPECT_EQ(order[1], paperApps()[1].name);
}

TEST_F(SweepEnv, PrintNormalizedTableRendersRows)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).run();
    std::ostringstream os;
    sweep.printNormalizedTable(os, "test table", missMetric, "DRRIP");
    const std::string out = os.str();
    EXPECT_NE(out.find("test table"), std::string::npos);
    EXPECT_NE(out.find("MEAN"), std::string::npos);
    EXPECT_NE(out.find(paperApps()[0].name), std::string::npos);
    // Baseline column is omitted.
    EXPECT_EQ(out.find("DRRIP  NRU"), std::string::npos);
}

TEST_F(SweepEnv, ObserverSeesCellsInSweepOrder)
{
    std::vector<std::string> seen;
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "NRU"}).threads(4).run(
            [&seen](const SweepCell &cell, const FrameTrace &t) {
                seen.push_back(cell.key.policy);
                EXPECT_EQ(cell.result.stats.totalAccesses(),
                          t.accesses.size());
            });
    ASSERT_EQ(seen.size(), sweep.cells().size());
    EXPECT_EQ(seen, (std::vector<std::string>{"DRRIP", "NRU",
                                              "DRRIP", "NRU"}));
}

TEST_F(SweepEnv, DramTraceCollectionOnDemand)
{
    for (const unsigned nthreads : {1u, 2u}) {
        bool saw_dram = false;
        const SweepResult sweep =
            SweepConfig()
                .policies({"DRRIP"})
                .collectDramTrace(true)
                .threads(nthreads)
                .run([&saw_dram](const SweepCell &cell,
                                 const FrameTrace &) {
                    saw_dram |= !cell.result.dramTrace.empty();
                });
        EXPECT_TRUE(saw_dram) << nthreads << " threads";
        // But the retained cells drop the bulky traces.
        for (const SweepCell &cell : sweep.cells())
            EXPECT_TRUE(cell.result.dramTrace.empty());
    }
}

TEST_F(SweepEnv, RegistryFreePolicySpecsSweep)
{
    std::vector<PolicySpec> specs{policySpec("DRRIP"),
                                  policySpec("GSPC")};
    specs[1].name = "custom-name";
    const SweepResult sweep =
        SweepConfig().policySpecs(specs).run();
    EXPECT_EQ(sweep.policies(),
              (std::vector<std::string>{"DRRIP", "custom-name"}));
    EXPECT_EQ(sweep.cells()[1].key.policy, "custom-name");
}

TEST_F(SweepEnv, CsvExportHasHeaderAndOneRowPerCell)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "GSPC"}).run();
    std::ostringstream os;
    sweep.writeCsv(os);
    const std::string out = os.str();

    std::size_t lines = 0;
    for (const char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 1u + sweep.cells().size());
    EXPECT_EQ(out.find("app,frame,policy"), 0u);
    EXPECT_NE(out.find(",GSPC,"), std::string::npos);
}

TEST_F(SweepEnv, CsvValuesAreConsistent)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP"}).run();
    std::ostringstream os;
    writeSweepCsv(sweep, os);
    // The first data row's accesses field matches the cell.
    std::istringstream is(os.str());
    std::string header, row;
    std::getline(is, header);
    std::getline(is, row);
    const SweepCell &cell = sweep.cells().front();
    EXPECT_NE(row.find("," + std::to_string(
                           cell.result.stats.totalAccesses()) + ","),
              std::string::npos);
}

TEST_F(SweepEnv, JsonExportHasConfigAndOneRecordPerCell)
{
    const SweepResult sweep =
        SweepConfig().policies({"DRRIP", "GSPC"}).run();
    std::ostringstream os;
    sweep.writeJson(os);
    const std::string out = os.str();

    EXPECT_EQ(out.front(), '{');
    EXPECT_NE(out.find("\"scale\": 8"), std::string::npos);
    EXPECT_NE(out.find("\"capacity_bytes\": 131072"),
              std::string::npos);
    EXPECT_NE(out.find("\"policies\": [\"DRRIP\", \"GSPC\"]"),
              std::string::npos);
    std::size_t records = 0;
    for (std::size_t pos = out.find("{\"app\":");
         pos != std::string::npos;
         pos = out.find("{\"app\":", pos + 1))
        ++records;
    EXPECT_EQ(records, sweep.cells().size());
}
