/**
 * @file
 * Tests for the frame-set sweep engine and the CSV export.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "analysis/report.hh"
#include "analysis/sweep.hh"

using namespace gllc;

namespace
{

/** RAII environment setup: 2 frames at scale 8 keeps tests fast. */
class SweepEnv : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ::setenv("GLLC_FRAMES", "2", 1);
        ::setenv("GLLC_SCALE", "8", 1);
    }

    void
    TearDown() override
    {
        ::unsetenv("GLLC_FRAMES");
        ::unsetenv("GLLC_SCALE");
    }
};

} // namespace

TEST_F(SweepEnv, RunsEveryFramePolicyPair)
{
    PolicySweep sweep({"DRRIP", "NRU"});
    sweep.run();
    EXPECT_EQ(sweep.cells().size(), 4u);  // 2 frames x 2 policies
    EXPECT_EQ(sweep.scale().linear, 8u);
    // 8 MB scaled by 1/64 -> 128 KB.
    EXPECT_EQ(sweep.llcConfig().capacityBytes, 128u * 1024);
}

TEST_F(SweepEnv, TotalsGroupByApp)
{
    PolicySweep sweep({"DRRIP", "NRU"});
    sweep.run();
    const auto totals = sweep.totalsByApp(missMetric);
    EXPECT_EQ(totals.size(), 2u);  // two apps (round-robin frame 0s)
    for (const auto &[app, row] : totals) {
        EXPECT_EQ(row.size(), 2u);
        EXPECT_GT(row.at("DRRIP"), 0.0);
    }
}

TEST_F(SweepEnv, NormalizedMeanOfBaselineIsOne)
{
    PolicySweep sweep({"DRRIP", "NRU"});
    sweep.run();
    const auto means = sweep.meanNormalized(missMetric, "DRRIP");
    EXPECT_DOUBLE_EQ(means.at("DRRIP"), 1.0);
    EXPECT_GT(means.at("NRU"), 0.5);
    EXPECT_LT(means.at("NRU"), 2.0);
}

TEST_F(SweepEnv, AppOrderFollowsTable1)
{
    PolicySweep sweep({"DRRIP"});
    sweep.run();
    const auto order = sweep.appOrder();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], paperApps()[0].name);
    EXPECT_EQ(order[1], paperApps()[1].name);
}

TEST_F(SweepEnv, PrintNormalizedTableRendersRows)
{
    PolicySweep sweep({"DRRIP", "NRU"});
    sweep.run();
    std::ostringstream os;
    sweep.printNormalizedTable(os, "test table", missMetric, "DRRIP");
    const std::string out = os.str();
    EXPECT_NE(out.find("test table"), std::string::npos);
    EXPECT_NE(out.find("MEAN"), std::string::npos);
    EXPECT_NE(out.find(paperApps()[0].name), std::string::npos);
    // Baseline column is omitted.
    EXPECT_EQ(out.find("DRRIP  NRU"), std::string::npos);
}

TEST_F(SweepEnv, PerFrameCallbackObservesCells)
{
    PolicySweep sweep({"DRRIP"});
    int calls = 0;
    sweep.run([&calls](const SweepCell &cell, const FrameTrace &t) {
        ++calls;
        EXPECT_EQ(cell.policy, "DRRIP");
        EXPECT_EQ(cell.result.stats.totalAccesses(),
                  t.accesses.size());
    });
    EXPECT_EQ(calls, 2);
}

TEST_F(SweepEnv, DramTraceCollectionOnDemand)
{
    PolicySweep sweep({"DRRIP"});
    sweep.setCollectDramTrace(true);
    bool saw_dram = false;
    sweep.run([&saw_dram](const SweepCell &cell, const FrameTrace &) {
        saw_dram |= !cell.result.dramTrace.empty();
    });
    EXPECT_TRUE(saw_dram);
    // But the retained cells drop the bulky traces.
    for (const SweepCell &cell : sweep.cells())
        EXPECT_TRUE(cell.result.dramTrace.empty());
}

TEST_F(SweepEnv, CsvExportHasHeaderAndOneRowPerCell)
{
    PolicySweep sweep({"DRRIP", "GSPC"});
    sweep.run();
    std::ostringstream os;
    writeSweepCsv(sweep, os);
    const std::string out = os.str();

    std::size_t lines = 0;
    for (const char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 1u + sweep.cells().size());
    EXPECT_EQ(out.find("app,frame,policy"), 0u);
    EXPECT_NE(out.find(",GSPC,"), std::string::npos);
}

TEST_F(SweepEnv, CsvValuesAreConsistent)
{
    PolicySweep sweep({"DRRIP"});
    sweep.run();
    std::ostringstream os;
    writeSweepCsv(sweep, os);
    // The first data row's accesses field matches the cell.
    std::istringstream is(os.str());
    std::string header, row;
    std::getline(is, header);
    std::getline(is, row);
    const SweepCell &cell = sweep.cells().front();
    EXPECT_NE(row.find("," + std::to_string(
                           cell.result.stats.totalAccesses()) + ","),
              std::string::npos);
}
