/**
 * @file
 * End-to-end integration tests: the paper's headline results must
 * hold in aggregate on (a reduced version of) the workload set.
 *
 * These use a coarse machine scale (GLLC-independent, fixed here) to
 * stay fast; the full 52-frame runs live in bench/.
 */

#include <gtest/gtest.h>

#include <map>

#include "analysis/offline_sim.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

RenderScale
testScale()
{
    RenderScale s;
    s.linear = 8;
    return s;
}

/** One frame of each of the first @p napps applications. */
std::vector<FrameTrace> &
frames(std::size_t napps = 6)
{
    static std::vector<FrameTrace> traces = [napps] {
        std::vector<FrameTrace> t;
        for (std::size_t i = 0; i < napps; ++i)
            t.push_back(renderFrame(paperApps()[i], 0, testScale()));
        return t;
    }();
    return traces;
}

LlcConfig
testLlc()
{
    return scaledLlcConfig(8ull << 20, testScale().pixelScale());
}

std::map<std::string, std::uint64_t>
missTotals(const std::vector<std::string> &policies)
{
    std::map<std::string, std::uint64_t> misses;
    for (const FrameTrace &t : frames()) {
        for (const std::string &p : policies)
            misses[p] +=
                runTrace(t, policySpec(p), testLlc()).stats
                    .totalMisses();
    }
    return misses;
}

} // namespace

TEST(Integration, PolicyOrderingMatchesPaper)
{
    // Figure 12's ordering in aggregate: Belady < GSPC+UCD <= GSPC <
    // GSPZTC < DRRIP, and NRU no better than DRRIP except for noise
    // (the paper's Figure 1; at this reduced scale the NRU/DRRIP gap
    // can shrink, so allow a small tolerance).
    const auto m = missTotals({"NRU", "DRRIP", "GSPZTC", "GSPC",
                               "GSPC+UCD", "Belady"});
    EXPECT_LT(m.at("Belady"), m.at("GSPC+UCD"));
    EXPECT_LE(m.at("GSPC+UCD"), m.at("GSPC"));
    EXPECT_LT(m.at("GSPC"), m.at("GSPZTC"));
    EXPECT_LT(m.at("GSPZTC"), m.at("DRRIP"));
    EXPECT_LT(static_cast<double>(m.at("DRRIP")),
              static_cast<double>(m.at("NRU")) * 1.08);
}

TEST(Integration, BeladyLeavesLargeGap)
{
    // Figure 1: Belady saves a very large fraction of DRRIP misses.
    const auto m = missTotals({"DRRIP", "Belady"});
    const double ratio = static_cast<double>(m.at("Belady"))
        / static_cast<double>(m.at("DRRIP"));
    EXPECT_LT(ratio, 0.85);
}

TEST(Integration, GspcSavesVisibleMisses)
{
    const auto m = missTotals({"DRRIP", "GSPC+UCD"});
    const double ratio = static_cast<double>(m.at("GSPC+UCD"))
        / static_cast<double>(m.at("DRRIP"));
    EXPECT_LT(ratio, 0.97);
}

TEST(Integration, ConsumptionRateOrdering)
{
    // Figure 6 / 13: OPT consumes far more RT blocks than DRRIP,
    // which consumes more than NRU; the statically protecting
    // GSPZTC+TSE recovers much of the OPT gap.  The render-to-
    // texture distances only fit the LLC at the default scale, so
    // this test runs at scale 4 on a 3-app subset.
    RenderScale scale;
    scale.linear = 4;
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());
    std::map<std::string, double> cons, prod;
    for (std::size_t i = 0; i < 3; ++i) {
        const FrameTrace t = renderFrame(paperApps()[i], 0, scale);
        for (const char *p :
             {"NRU", "DRRIP", "GSPZTC+TSE", "Belady"}) {
            const auto r = runTrace(t, policySpec(p), llc);
            cons[p] += static_cast<double>(
                r.characterization.rtConsumptions);
            prod[p] += static_cast<double>(
                r.characterization.rtProductions);
        }
    }
    const auto rate = [&](const char *p) {
        return cons.at(p) / prod.at(p);
    };
    EXPECT_GT(rate("Belady"), rate("GSPZTC+TSE"));
    EXPECT_GT(rate("GSPZTC+TSE"), rate("DRRIP"));
    EXPECT_GT(rate("DRRIP"), rate("NRU"));
}

TEST(Integration, TextureEpochShape)
{
    // Figure 7 under Belady: E0 dominates the intra-stream hits and
    // has a high death ratio.
    Characterization ch;
    for (const FrameTrace &t : frames())
        ch.merge(runTrace(t, policySpec("Belady"), testLlc())
                     .characterization);
    EXPECT_GT(ch.texEpochHits[0], ch.texEpochHits[1]);
    EXPECT_GT(ch.texEpochHits[1], ch.texEpochHits[2]);
    EXPECT_GT(ch.texDeathRatio(0), 0.6);
}

TEST(Integration, ZEpochDeathDecreases)
{
    // Figure 9: the Z stream's death ratio falls with the epoch,
    // justifying a single collective Z reuse probability.
    Characterization ch;
    for (const FrameTrace &t : frames())
        ch.merge(runTrace(t, policySpec("Belady"), testLlc())
                     .characterization);
    EXPECT_GT(ch.zDeathRatio(0), ch.zDeathRatio(2));
}

TEST(Integration, GspcImprovesTextureHitRate)
{
    LlcStats drrip, gspc;
    for (const FrameTrace &t : frames()) {
        drrip.merge(runTrace(t, policySpec("DRRIP"), testLlc()).stats);
        gspc.merge(
            runTrace(t, policySpec("GSPC+UCD"), testLlc()).stats);
    }
    EXPECT_GT(gspc.hitRate(StreamType::Texture),
              drrip.hitRate(StreamType::Texture));
}

TEST(Integration, EndToEndGpuSimulationSpeedsUp)
{
    // Figure 15's direction: GSPC+UCD renders frames faster than
    // DRRIP+UCD in aggregate.  Run at the default (scale 4) machine
    // where GSPC's learning has its intended sample population.
    RenderScale scale;
    scale.linear = 4;
    const GpuConfig gpu = GpuConfig::baseline();
    double drrip_cycles = 0, gspc_cycles = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        const FrameTrace t = renderFrame(paperApps()[i], 0, scale);
        drrip_cycles += simulateFrame(t, policySpec("DRRIP+UCD"), gpu,
                                      scale)
                            .timing.frameCycles;
        gspc_cycles +=
            simulateFrame(t, policySpec("GSPC+UCD"), gpu, scale)
                .timing.frameCycles;
    }
    EXPECT_LT(gspc_cycles, drrip_cycles);
}

TEST(Integration, OfflineAndGpuSimulatorsAgreeOnLlcStats)
{
    // The paper validated its offline cache simulator against the
    // detailed simulator's LLC; our analog: runTrace and
    // simulateFrame must produce identical LLC statistics for the
    // same trace/policy/geometry.
    const FrameTrace &t = frames(1).front();
    const GpuConfig gpu = GpuConfig::baseline();
    const FrameSimResult full =
        simulateFrame(t, policySpec("GSPC+UCD"), gpu, testScale());
    const RunResult offline =
        runTrace(t, policySpec("GSPC+UCD"), testLlc());
    EXPECT_EQ(full.llcStats.totalMisses(),
              offline.stats.totalMisses());
    EXPECT_EQ(full.llcStats.totalHits(), offline.stats.totalHits());
    EXPECT_EQ(full.llcStats.writebacks, offline.stats.writebacks);
    EXPECT_EQ(full.characterization.rtConsumptions,
              offline.characterization.rtConsumptions);
}

TEST(Integration, BiggerLlcHelpsEveryPolicy)
{
    for (const char *policy : {"DRRIP", "GSPC"}) {
        std::uint64_t small = 0, big = 0;
        for (const FrameTrace &t : frames(4)) {
            small += runTrace(t, policySpec(policy),
                              scaledLlcConfig(8ull << 20, 64))
                         .stats.totalMisses();
            big += runTrace(t, policySpec(policy),
                            scaledLlcConfig(16ull << 20, 64))
                       .stats.totalMisses();
        }
        EXPECT_LT(big, small) << policy;
    }
}
