/**
 * @file
 * Durability tests for the gllcd job journal (WAL): accept/finish
 * round trips, recovery ordering, torn-tail tolerance, and the
 * canonical-spec property that makes replayed jobs byte-identical.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "service/job_journal.hh"

using namespace gllc;

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "/gllc_journal_"
        + std::to_string(::getpid()) + "_" + leaf;
}

/** A minimal but valid spec, distinguishable by @p llc_bytes. */
SweepJobSpec
spec(std::uint64_t llc_bytes)
{
    SweepJobSpec s;
    s.policies = {"DRRIP+UCD"};
    s.frames = {{"manycubes", 0}};
    s.llcBytes = llc_bytes;
    return s;
}

QueuedJob
job(std::uint64_t id, const std::string &tenant, int priority,
    std::uint64_t llc_bytes)
{
    QueuedJob j;
    j.id = id;
    j.tenant = tenant;
    j.priority = priority;
    j.spec = spec(llc_bytes);
    return j;
}

std::string
slurp(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    std::ostringstream ss;
    ss << is.rdbuf();
    return ss.str();
}

} // namespace

TEST(JobJournal, UnfinishedJobsRecoverInAcceptanceOrder)
{
    const std::string path = tempPath("order.wal");
    std::remove(path.c_str());
    {
        JobJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        journal.recordAccept(job(1, "a", 0, 1 << 20));
        journal.recordAccept(job(2, "b", 5, 2 << 20));
        journal.recordAccept(job(3, "a", 0, 3 << 20));
        journal.recordFinish(2, "completed");
        journal.close();
    }

    Result<JournalRecovery> loaded = JobJournal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    const JournalRecovery &recovery = loaded.value();
    EXPECT_EQ(recovery.accepted, 3u);
    EXPECT_EQ(recovery.finished, 1u);
    EXPECT_EQ(recovery.skippedLines, 0u);
    EXPECT_EQ(recovery.maxJobId, 3u);
    ASSERT_EQ(recovery.pending.size(), 2u);
    EXPECT_EQ(recovery.pending[0].id, 1u);
    EXPECT_EQ(recovery.pending[1].id, 3u);
    EXPECT_EQ(recovery.pending[0].tenant, "a");
    EXPECT_EQ(recovery.pending[1].priority, 0);
}

TEST(JobJournal, ReplayedSpecKeepsItsContentHash)
{
    // The whole recovery guarantee hangs on this: the spec string
    // in an accept record must round-trip to the same canonical
    // serialization, hence the same ResultStore key.
    const std::string path = tempPath("hash.wal");
    std::remove(path.c_str());
    const QueuedJob original = job(7, "acme", 2, 6 << 20);
    {
        JobJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        journal.recordAccept(original);
        journal.close();
    }
    Result<JournalRecovery> loaded = JobJournal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    ASSERT_EQ(loaded.value().pending.size(), 1u);
    const SweepJobSpec &replayed = loaded.value().pending[0].spec;
    EXPECT_EQ(replayed.contentHash(), original.spec.contentHash());
    EXPECT_EQ(replayed.traceHash(), original.spec.traceHash());
    EXPECT_EQ(replayed.toJson(), original.spec.toJson());
}

TEST(JobJournal, TornTailIsSkippedNotFatal)
{
    // A kill -9 mid-append leaves a partial final line.  load()
    // must skip it (counted) and keep every intact record.
    const std::string path = tempPath("torn.wal");
    std::remove(path.c_str());
    {
        JobJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        journal.recordAccept(job(1, "a", 0, 1 << 20));
        journal.recordAccept(job(2, "b", 0, 2 << 20));
        journal.close();
    }
    std::string bytes = slurp(path);
    ASSERT_GT(bytes.size(), 20u);
    bytes.resize(bytes.size() - 17);  // tear into the last record
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << bytes;
    }

    Result<JournalRecovery> loaded = JobJournal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().skippedLines, 1u);
    ASSERT_EQ(loaded.value().pending.size(), 1u);
    EXPECT_EQ(loaded.value().pending[0].id, 1u);

    // Re-opening for append trims the torn tail, so new records
    // land on a clean line boundary and recover too.
    {
        JobJournal journal;
        ASSERT_TRUE(journal.open(path).ok());
        journal.recordAccept(job(3, "c", 0, 3 << 20));
        journal.close();
    }
    loaded = JobJournal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_EQ(loaded.value().skippedLines, 0u);
    ASSERT_EQ(loaded.value().pending.size(), 2u);
    EXPECT_EQ(loaded.value().pending[1].id, 3u);
}

TEST(JobJournal, MissingFileIsIoAndEmptyFileIsEmpty)
{
    const std::string path = tempPath("absent.wal");
    std::remove(path.c_str());
    Result<JournalRecovery> loaded = JobJournal::load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Io);

    {
        std::ofstream os(path, std::ios::binary);
    }
    loaded = JobJournal::load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.error().toString();
    EXPECT_TRUE(loaded.value().pending.empty());
    EXPECT_EQ(loaded.value().maxJobId, 0u);
}

TEST(JobJournal, HeaderlessJournalIsCorrupt)
{
    const std::string path = tempPath("noheader.wal");
    {
        std::ofstream os(path, std::ios::binary | std::ios::trunc);
        os << "{\"not_a_journal\":true}\n";
    }
    Result<JournalRecovery> loaded = JobJournal::load(path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.error().code, ErrorCode::Corrupt);
}

TEST(JobJournal, NeverOpenedJournalDropsRecordsQuietly)
{
    // The daemon journals unconditionally; an unconfigured journal
    // must be a free no-op, not a crash or a stray file.
    JobJournal journal;
    EXPECT_FALSE(journal.active());
    journal.recordAccept(job(1, "a", 0, 1 << 20));
    journal.recordFinish(1, "completed");
    journal.close();
}
