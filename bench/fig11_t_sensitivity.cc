/**
 * @file
 * Figure 11: sensitivity of GSPZTC to the threshold parameter t
 * (reuse-probability threshold 1/(t+1)), reported as the percent
 * change in LLC misses relative to t = 16.
 *
 * Paper result: t = 8 is the most robust setting; t = 2 and t = 4
 * lose in a few applications (Dirt, HAWX, Unigine) while Assassin's
 * Creed slightly prefers t = 2.
 */

#include <algorithm>
#include <iostream>

#include "bench/bench_util.hh"
#include "common/logging.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    // The threshold-sweep points come from the registry's
    // machine-readable metadata rather than hand-assembled names.
    std::vector<PolicySpec> specs;
    for (PolicySpec &spec : allPolicySpecs()) {
        if (spec.baseName == "GSPZTC" && spec.threshold != 0
            && !spec.uncachedDisplay)
            specs.push_back(std::move(spec));
    }
    std::sort(specs.begin(), specs.end(),
              [](const PolicySpec &a, const PolicySpec &b) {
                  return a.threshold > b.threshold;
              });
    const auto name_of = [&specs](unsigned t) -> const std::string & {
        for (const PolicySpec &spec : specs) {
            if (spec.threshold == t)
                return spec.name;
        }
        fatal("GSPZTC threshold t=%u not enumerated", t);
    };
    const std::string base_name = name_of(16);

    const SweepResult sweep = cli.apply(SweepConfig()
                                  .policySpecs(specs))
                                  .run();
    benchBanner("Figure 11: GSPZTC threshold sensitivity", sweep);

    const auto totals = sweep.totalsByApp(missMetric);

    TablePrinter tp({"app", "t=2", "t=4", "t=8"});
    for (const std::string &app : sweep.appOrder()) {
        const double base = totals.at(app).at(base_name);
        auto delta = [&](unsigned t) {
            return fmt(100.0
                           * (totals.at(app).at(name_of(t)) / base
                              - 1.0),
                       2)
                + "%";
        };
        tp.addRow({app, delta(2), delta(4), delta(8)});
    }
    const auto means = sweep.meanNormalized(missMetric, base_name);
    auto mean_delta = [&](unsigned t) {
        return fmt(100.0 * (means.at(name_of(t)) - 1.0), 2) + "%";
    };
    tp.addRow({"MEAN", mean_delta(2), mean_delta(4), mean_delta(8)});
    std::cout << "percent change in LLC misses relative to t=16 "
              << "(positive = more misses)\n";
    tp.print(std::cout);
    return cli.finish(sweep);
}
