/**
 * @file
 * Figure 11: sensitivity of GSPZTC to the threshold parameter t
 * (reuse-probability threshold 1/(t+1)), reported as the percent
 * change in LLC misses relative to t = 16.
 *
 * Paper result: t = 8 is the most robust setting; t = 2 and t = 4
 * lose in a few applications (Dirt, HAWX, Unigine) while Assassin's
 * Creed slightly prefers t = 2.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main()
{
    PolicySweep sweep({"GSPZTC(t=16)", "GSPZTC(t=8)", "GSPZTC(t=4)",
                       "GSPZTC(t=2)"});
    sweep.run();
    benchBanner("Figure 11: GSPZTC threshold sensitivity", sweep);

    const auto totals = sweep.totalsByApp(missMetric);

    TablePrinter tp({"app", "t=2", "t=4", "t=8"});
    for (const std::string &app : sweep.appOrder()) {
        const double base = totals.at(app).at("GSPZTC(t=16)");
        auto delta = [&](const std::string &p) {
            return fmt(100.0 * (totals.at(app).at(p) / base - 1.0), 2)
                + "%";
        };
        tp.addRow({app, delta("GSPZTC(t=2)"), delta("GSPZTC(t=4)"),
                   delta("GSPZTC(t=8)")});
    }
    const auto means = sweep.meanNormalized(missMetric, "GSPZTC(t=16)");
    tp.addRow({"MEAN",
               fmt(100.0 * (means.at("GSPZTC(t=2)") - 1.0), 2) + "%",
               fmt(100.0 * (means.at("GSPZTC(t=4)") - 1.0), 2) + "%",
               fmt(100.0 * (means.at("GSPZTC(t=8)") - 1.0), 2) + "%"});
    std::cout << "percent change in LLC misses relative to t=16 "
              << "(positive = more misses)\n";
    tp.print(std::cout);
    return 0;
}
