/**
 * @file
 * CLI front end of the replay hot-path benchmark (bench/hotpath.hh).
 *
 * Prints a throughput table per policy and, with --json, emits the
 * "gllc-hotpath-v1" report the CI perf-regression job diffs against
 * the checked-in BENCH_hotpath.json baseline (tools/check_perf.py).
 *
 * Flags:
 *   --json <path>      write the machine-readable report
 *   --generic          measure the generic (virtual-observer) path
 *   --accesses <n>     synthetic trace length (default 2000000)
 *   --repeats <n>      timed repeats per (trace, policy) cell
 *   --real-frames <n>  cached real frames per policy (default 1)
 *   --policy <name>    measure one policy (repeatable; default all)
 *
 * GLLC_SCALE scales the real traces as everywhere else; the
 * re-baseline workflow is documented in README.md.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench/hotpath.hh"
#include "common/logging.hh"

using namespace gllc;

namespace
{

std::uint64_t
parseCount(const std::string &flag, const char *value)
{
    char *end = nullptr;
    const unsigned long long v = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0')
        fatal("%s expects a number, got \"%s\"", flag.c_str(), value);
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    HotpathOptions options;
    std::string json_path;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        const auto need_value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s requires a value", flag.c_str());
            return argv[++i];
        };
        if (flag == "--json") {
            json_path = need_value();
        } else if (flag == "--generic") {
            options.genericPath = true;
        } else if (flag == "--accesses") {
            options.syntheticAccesses =
                static_cast<std::size_t>(parseCount(flag,
                                                    need_value()));
        } else if (flag == "--repeats") {
            options.repeats =
                static_cast<std::uint32_t>(parseCount(flag,
                                                      need_value()));
        } else if (flag == "--real-frames") {
            options.realFrames =
                static_cast<std::uint32_t>(parseCount(flag,
                                                      need_value()));
        } else if (flag == "--policy") {
            options.policies.emplace_back(need_value());
        } else {
            fatal("unknown flag \"%s\"", flag.c_str());
        }
    }

    const HotpathReport report = runHotpathBench(options);
    writeHotpathTable(std::cout, report);

    if (!json_path.empty()) {
        std::ofstream os(json_path);
        if (!os)
            fatal("cannot write %s", json_path.c_str());
        writeHotpathJson(os, report);
        std::cout << "wrote " << json_path << "\n";
    }
    return 0;
}
