/**
 * @file
 * Google-benchmark microbenchmarks of the simulator components:
 * per-access throughput of the LLC under each policy family, the
 * DDR3 schedule, and frame-trace generation.  These guard against
 * performance regressions in the library itself (the figure
 * harnesses replay ~10^8 accesses).
 */

#include <benchmark/benchmark.h>

#include "analysis/offline_sim.hh"
#include "analysis/policy_table.hh"
#include "analysis/reuse_distance.hh"
#include "cache/policy/belady.hh"
#include "dram/dram_model.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

/** One shared small frame so every benchmark sees the same trace. */
const FrameTrace &
sharedTrace()
{
    static const FrameTrace trace = [] {
        RenderScale scale;
        scale.linear = 8;
        return renderFrame(paperApps().front(), 0, scale);
    }();
    return trace;
}

void
BM_LlcReplay(benchmark::State &state, const std::string &policy)
{
    const FrameTrace &trace = sharedTrace();
    const LlcConfig config = scaledLlcConfig(8ull << 20, 64);
    for (auto _ : state) {
        const RunResult r =
            runTrace(trace, policySpec(policy), config);
        benchmark::DoNotOptimize(r.stats.totalMisses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(trace.accesses.size()));
}

void
BM_TraceGeneration(benchmark::State &state)
{
    RenderScale scale;
    scale.linear = 8;
    std::uint32_t frame = 0;
    for (auto _ : state) {
        const FrameTrace t =
            renderFrame(paperApps().front(), frame++ % 4, scale);
        benchmark::DoNotOptimize(t.accesses.size());
    }
}

void
BM_DramSchedule(benchmark::State &state)
{
    const FrameTrace &trace = sharedTrace();
    const LlcConfig config = scaledLlcConfig(8ull << 20, 64);
    RunOptions options;
    options.collectDramTrace = true;
    const RunResult run =
        runTrace(trace, policySpec("DRRIP"), config, options);

    std::vector<DramRequest> reqs;
    reqs.reserve(run.dramTrace.size());
    std::uint64_t last = 0;
    for (const MemAccess &a : run.dramTrace) {
        last = std::max<std::uint64_t>(last, a.cycle);
        reqs.push_back(DramRequest{a.addr, last, a.isWrite});
    }

    DramModel dram(DramConfig::ddr3_1600());
    for (auto _ : state) {
        const DramStats s = dram.simulate(reqs);
        benchmark::DoNotOptimize(s.finishCycle);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(reqs.size()));
}

void
BM_ReuseDistances(benchmark::State &state)
{
    const FrameTrace &trace = sharedTrace();
    for (auto _ : state) {
        const auto d = measureReuseDistances(trace.accesses);
        benchmark::DoNotOptimize(d.front().accesses());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(trace.accesses.size()));
}

void
BM_OracleBuild(benchmark::State &state)
{
    const FrameTrace &trace = sharedTrace();
    for (auto _ : state) {
        const auto oracle = buildNextUseOracle(trace.accesses);
        benchmark::DoNotOptimize(oracle.size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations())
        * static_cast<std::int64_t>(trace.accesses.size()));
}

} // namespace

BENCHMARK_CAPTURE(BM_LlcReplay, drrip, std::string("DRRIP"));
BENCHMARK_CAPTURE(BM_LlcReplay, nru, std::string("NRU"));
BENCHMARK_CAPTURE(BM_LlcReplay, ship, std::string("SHiP-mem"));
BENCHMARK_CAPTURE(BM_LlcReplay, ucp, std::string("UCP-stream"));
BENCHMARK_CAPTURE(BM_LlcReplay, gspc, std::string("GSPC"));
BENCHMARK_CAPTURE(BM_LlcReplay, gspcb, std::string("GSPC+B"));
BENCHMARK_CAPTURE(BM_LlcReplay, belady, std::string("Belady"));
BENCHMARK(BM_TraceGeneration);
BENCHMARK(BM_DramSchedule);
BENCHMARK(BM_ReuseDistances);
BENCHMARK(BM_OracleBuild);

BENCHMARK_MAIN();
