/**
 * @file
 * Extension: explicit partitioning and insertion-policy baselines.
 *
 * Section 1.1.1 argues that explicit cache partitioning (UCP and
 * successors) "cannot be applied directly to the 3D graphics
 * streams, which have significant inter-stream data sharing", and
 * that GSPC instead induces implicit fine-grain partitions.  This
 * harness tests the argument: UCP applied per stream, and DIP,
 * against DRRIP and GSPC, alongside pseudo-LIFO (the paper's dead-
 * block-flavoured reference [5]).  Expected shape: the stream-
 * oblivious baselines trail
 * GSPC clearly; UCP-stream in particular cannot credit the render
 * target stream for texture-stream consumption hits.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "DIP", "peLIFO", "UCP-stream",
                       "GS-DRRIP", "GSPC"}))
            .run();
    benchBanner(
        "Extension: partitioning/insertion baselines vs GSPC", sweep);
    sweep.printNormalizedTable(std::cout, "LLC misses", missMetric,
                               "DRRIP");
    return cli.finish(sweep);
}
