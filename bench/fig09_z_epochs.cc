/**
 * @file
 * Figure 9: death ratio of each epoch of the Z-stream blocks under
 * Belady's optimal policy.
 *
 * Paper averages: E0 0.61, E1 0.38, E2 0.26 — only the first epoch
 * has a high death ratio, which is why GSPC tracks a single
 * collective reuse probability for Z instead of per-epoch state.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"Belady"}))
            .run();
    benchBanner("Figure 9: Z-stream epoch death ratios under Belady",
                sweep);

    std::map<std::string, Characterization> per_app;
    Characterization all;
    for (const SweepCell &cell : sweep.cells()) {
        per_app[cell.key.app].merge(cell.result.characterization);
        all.merge(cell.result.characterization);
    }

    TablePrinter tp({"app", "death E0", "death E1", "death E2"});
    for (const std::string &app : sweep.appOrder()) {
        const Characterization &ch = per_app.at(app);
        tp.addRow({app, fmt(ch.zDeathRatio(0), 2),
                   fmt(ch.zDeathRatio(1), 2),
                   fmt(ch.zDeathRatio(2), 2)});
    }
    tp.addRow({"ALL", fmt(all.zDeathRatio(0), 2),
               fmt(all.zDeathRatio(1), 2), fmt(all.zDeathRatio(2), 2)});
    tp.print(std::cout);
    return cli.finish(sweep);
}
