/**
 * @file
 * Figure 13: cross-frame means of the texture sampler hit rate, the
 * render-target-to-texture consumption rate, the render target
 * (blending) hit rate and the Z hit rate for each policy.
 *
 * Paper result: texture hit rate and consumption rate climb through
 * GSPZTC and GSPZTC+TSE, dip slightly under GSPC's probabilistic RT
 * insertion, and recover with +UCD; GSPC's render target hit rate
 * (57.7%) approaches Belady's (59.8%); GS-DRRIP keeps the best Z
 * hit rate.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "GS-DRRIP", "GSPZTC", "GSPZTC+TSE",
                       "GSPC", "GSPC+UCD", "Belady"}))
            .run();
    benchBanner("Figure 13: per-policy stream behaviour (means)",
                sweep);

    struct Acc
    {
        double tex_hits = 0, tex_acc = 0;
        double cons = 0, prod = 0;
        double rt_hits = 0, rt_acc = 0;
        double z_hits = 0, z_acc = 0;
    };
    std::map<std::string, Acc> acc;
    for (const SweepCell &cell : sweep.cells()) {
        Acc &a = acc[cell.key.policy];
        const LlcStats &s = cell.result.stats;
        a.tex_hits += static_cast<double>(
            s.of(StreamType::Texture).hits);
        a.tex_acc += static_cast<double>(
            s.of(StreamType::Texture).accesses);
        a.cons += static_cast<double>(
            cell.result.characterization.rtConsumptions);
        a.prod += static_cast<double>(
            cell.result.characterization.rtProductions);
        a.rt_hits += static_cast<double>(
            s.of(StreamType::RenderTarget).hits);
        a.rt_acc += static_cast<double>(
            s.of(StreamType::RenderTarget).accesses);
        a.z_hits += static_cast<double>(s.of(StreamType::Z).hits);
        a.z_acc += static_cast<double>(s.of(StreamType::Z).accesses);
    }

    TablePrinter tp({"policy", "TEX hit rate", "RT->TEX consumption",
                     "RT hit rate", "Z hit rate"});
    for (const std::string &p : sweep.policies()) {
        const Acc &a = acc.at(p);
        tp.addRow({p, fmtPct(safeRatio(a.tex_hits, a.tex_acc)),
                   fmtPct(safeRatio(a.cons, a.prod)),
                   fmtPct(safeRatio(a.rt_hits, a.rt_acc)),
                   fmtPct(safeRatio(a.z_hits, a.z_acc))});
    }
    tp.print(std::cout);
    return cli.finish(sweep);
}
