/**
 * @file
 * Extension: inter-frame reuse across a short animation.
 *
 * The paper evaluates isolated frames ("we simulate the rendering of
 * each frame entirely").  Consecutive frames of an animation reuse
 * static textures and render-target surfaces, so the LLC sees
 * additional far-flung reuse at frame boundaries.  This harness
 * renders 3-frame animations per application (surfaces persist
 * across frames) and reports misses normalized to DRRIP, next to the
 * single-frame result, showing how the GSPC advantage carries over.
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "bench/bench_util.hh"
#include "common/env.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const RenderScale scale = scaleFromEnv();
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());
    const std::vector<std::string> policies{"DRRIP", "NRU", "GSPC+UCD",
                                            "Belady"};

    std::cout << "=== Extension: 3-frame animations vs single frames"
              << " (scale " << scale.linear << ") ===\n\n";

    std::vector<std::string> header{"app", "mode"};
    for (const auto &p : policies) {
        if (p != "DRRIP")
            header.push_back(p);
    }
    TablePrinter tp(header);

    std::map<std::string, std::vector<double>> ratios_single;
    std::map<std::string, std::vector<double>> ratios_anim;

    const auto napps =
        static_cast<std::size_t>(envInt("GLLC_FRAMES", 52)) >= 52
        ? paperApps().size()
        : std::min<std::size_t>(
              paperApps().size(),
              static_cast<std::size_t>(envInt("GLLC_FRAMES", 52)));

    for (std::size_t i = 0; i < napps; ++i) {
        const AppProfile &app = paperApps()[i];
        for (const bool animated : {false, true}) {
            const FrameTrace trace = animated
                ? renderAnimation(app, 3, scale)
                : renderFrame(app, 0, scale);
            std::map<std::string, double> misses;
            for (const auto &p : policies)
                misses[p] = missMetric(
                    runTrace(trace, policySpec(p), llc));

            std::vector<std::string> row{
                app.name, animated ? "anim3" : "frame"};
            for (const auto &p : policies) {
                if (p == "DRRIP")
                    continue;
                const double ratio = misses.at(p) / misses.at("DRRIP");
                row.push_back(fmt(ratio, 3));
                (animated ? ratios_anim : ratios_single)[p].push_back(
                    ratio);
            }
            tp.addRow(std::move(row));
        }
    }

    for (const bool animated : {false, true}) {
        std::vector<std::string> row{
            "MEAN", animated ? "anim3" : "frame"};
        for (const auto &p : policies) {
            if (p == "DRRIP")
                continue;
            row.push_back(fmt(
                mean((animated ? ratios_anim : ratios_single).at(p)),
                3));
        }
        tp.addRow(std::move(row));
    }

    std::cout << "LLC misses normalized to DRRIP\n";
    tp.print(std::cout);
    return 0;
}
