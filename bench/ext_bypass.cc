/**
 * @file
 * Extension: GSPC with dead-fill bypass (GSPC+B).
 *
 * The paper inserts dead-predicted texture/Z blocks at RRPV 3; the
 * authors' exclusive-LLC line of work (§1.1.1, refs [4][11])
 * suggests bypassing such fills altogether, sparing the RRPV-3
 * resident they would displace.  This harness compares GSPC and
 * GSPC+B (both with uncached display) against DRRIP.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "GSPC+UCD", "GSPC+B+UCD", "Belady"}))
            .run();
    benchBanner("Extension: dead-fill bypass (GSPC+B)", sweep);
    sweep.printNormalizedTable(std::cout, "LLC misses", missMetric,
                               "DRRIP");
    return cli.finish(sweep);
}
