/**
 * @file
 * Figure 15: rendering performance (frames/second) of NRU, GS-DRRIP
 * and GSPC relative to DRRIP on the baseline GPU with the 8 MB
 * 16-way LLC (all policies with uncached displayable color).
 *
 * Paper averages: NRU -7%, GS-DRRIP +0.8%, GSPC +8.0% (up to +18.2%
 * in Assassin's Creed); GSPC delivers 26.1 fps in absolute terms.
 */

#include "bench/perf_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    runPerfFigure("Figure 15: performance on the 8 MB LLC",
                  GpuConfig::baseline(),
                  {"DRRIP+UCD", "NRU+UCD", "GS-DRRIP+UCD",
                   "GSPC+UCD"}, cli);
    return 0;
}
