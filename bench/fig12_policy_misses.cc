/**
 * @file
 * Figure 12 (and Table 6): LLC miss counts for the full policy
 * lineup normalized to two-bit DRRIP on the 8 MB 16-way LLC.
 *
 * Paper averages (misses vs DRRIP): NRU +6.2%, SHiP-mem ~0%,
 * GS-DRRIP -2.9%, GSPZTC -4.8%, GSPZTC+TSE -11.5%, GSPC -11.8%,
 * GSPC+UCD -13.1%, DRRIP+UCD ~0%.  Assassin's Creed is the largest
 * gainer (-29.6% under GSPC+UCD); no application loses under GSPC.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult result =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "NRU", "SHiP-mem", "GS-DRRIP",
                       "GSPZTC", "GSPZTC+TSE", "GSPC", "GSPC+UCD",
                       "DRRIP+UCD"}))
            .run();
    benchBanner("Figure 12: LLC misses across policies", result);
    result.printNormalizedTable(std::cout, "LLC misses", missMetric,
                                "DRRIP");

    return cli.finish(result);
}
