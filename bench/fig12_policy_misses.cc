/**
 * @file
 * Figure 12 (and Table 6): LLC miss counts for the full policy
 * lineup normalized to two-bit DRRIP on the 8 MB 16-way LLC.
 *
 * Paper averages (misses vs DRRIP): NRU +6.2%, SHiP-mem ~0%,
 * GS-DRRIP -2.9%, GSPZTC -4.8%, GSPZTC+TSE -11.5%, GSPC -11.8%,
 * GSPC+UCD -13.1%, DRRIP+UCD ~0%.  Assassin's Creed is the largest
 * gainer (-29.6% under GSPC+UCD); no application loses under GSPC.
 */

#include <fstream>
#include <iostream>

#include "analysis/report.hh"
#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    PolicySweep sweep({"DRRIP", "NRU", "SHiP-mem", "GS-DRRIP",
                       "GSPZTC", "GSPZTC+TSE", "GSPC", "GSPC+UCD",
                       "DRRIP+UCD"});
    sweep.run();
    benchBanner("Figure 12: LLC misses across policies", sweep);
    sweep.printNormalizedTable(std::cout, "LLC misses", missMetric,
                               "DRRIP");

    // --csv <path>: dump every (app, frame, policy) cell for
    // plotting / regression tracking.
    if (argc == 3 && std::string(argv[1]) == "--csv") {
        std::ofstream csv(argv[2]);
        writeSweepCsv(sweep, csv);
        std::cout << "wrote " << argv[2] << "\n";
    }
    return 0;
}
