/**
 * @file
 * Figure 6.  Upper panel: texture sampler LLC hits split into
 * inter-stream (render target consumption) and intra-stream,
 * normalized to Belady's total texture hits.  Lower panel: the
 * percentage of render target blocks consumed by the sampler.
 *
 * Paper averages: 55% of Belady's texture hits are inter-stream;
 * Belady consumes 51% of RT blocks vs 16% (DRRIP) and 13% (NRU);
 * Assassin's Creed peaks near 90% potential consumption.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"Belady", "DRRIP", "NRU"}))
            .run();
    benchBanner("Figure 6: inter-stream texture reuse", sweep);

    const auto inter = sweep.totalsByApp([](const RunResult &r) {
        return static_cast<double>(r.characterization.interTexHits);
    });
    const auto intra = sweep.totalsByApp([](const RunResult &r) {
        return static_cast<double>(r.characterization.intraTexHits);
    });
    const auto produced = sweep.totalsByApp([](const RunResult &r) {
        return static_cast<double>(r.characterization.rtProductions);
    });
    const auto consumed = sweep.totalsByApp([](const RunResult &r) {
        return static_cast<double>(r.characterization.rtConsumptions);
    });

    std::vector<std::string> header{"app"};
    for (const auto &p : sweep.policies()) {
        header.push_back(p + " inter");
        header.push_back(p + " intra");
    }
    TablePrinter upper(header);

    for (const std::string &app : sweep.appOrder()) {
        const double belady_total =
            inter.at(app).at("Belady") + intra.at(app).at("Belady");
        std::vector<std::string> row{app};
        for (const auto &p : sweep.policies()) {
            row.push_back(
                fmt(safeRatio(inter.at(app).at(p), belady_total), 3));
            row.push_back(
                fmt(safeRatio(intra.at(app).at(p), belady_total), 3));
        }
        upper.addRow(std::move(row));
    }
    std::cout << "upper panel: texture hits, inter/intra, "
              << "normalized to Belady total\n";
    upper.print(std::cout);

    std::vector<std::string> header2{"app"};
    for (const auto &p : sweep.policies())
        header2.push_back(p);
    TablePrinter lower(header2);
    std::vector<double> mean_rate(sweep.policies().size(), 0.0);
    std::size_t apps = 0;
    for (const std::string &app : sweep.appOrder()) {
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < sweep.policies().size(); ++i) {
            const std::string &p = sweep.policies()[i];
            const double rate = safeRatio(consumed.at(app).at(p),
                                          produced.at(app).at(p));
            mean_rate[i] += rate;
            row.push_back(fmtPct(rate));
        }
        lower.addRow(std::move(row));
        ++apps;
    }
    std::vector<std::string> mean_row{"MEAN"};
    for (double r : mean_rate)
        mean_row.push_back(fmtPct(r / static_cast<double>(apps)));
    lower.addRow(std::move(mean_row));

    std::cout << "\nlower panel: % of RT blocks consumed by the "
              << "texture sampler\n";
    lower.print(std::cout);
    return cli.finish(sweep);
}
