/**
 * @file
 * Self-timing replay hot-path benchmark (DESIGN.md section 9).
 *
 * Replays a pinned synthetic trace plus cached real frame traces
 * through every registered policy and reports accesses/sec and
 * per-cell wall-time percentiles in the stable "gllc-hotpath-v1"
 * JSON schema.  bench/microbench.cc is the CLI front end; the CI
 * perf-regression job compares its output against the checked-in
 * BENCH_hotpath.json baseline with tools/check_perf.py.
 *
 * Self-timing (steady_clock around each replay) rather than a
 * google-benchmark dependency: the measured unit — one whole
 * (trace, policy) replay — is seconds long at bench scale, so
 * framework-grade timer calibration buys nothing, and the harness
 * stays runnable anywhere the library builds.
 */

#ifndef GLLC_BENCH_HOTPATH_HH
#define GLLC_BENCH_HOTPATH_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "trace/frame_trace.hh"

namespace gllc
{

/** Schema identifier stamped into the report JSON. */
inline constexpr const char *kHotpathSchema = "gllc-hotpath-v1";

/** What to run: traces, repetition count, path selection. */
struct HotpathOptions
{
    /** Length of the pinned synthetic trace. */
    std::size_t syntheticAccesses = 2'000'000;

    /** Seed of the synthetic trace generator. */
    std::uint64_t seed = 42;

    /** Cached real frames replayed per policy (0 = synthetic only). */
    std::uint32_t realFrames = 1;

    /** Timed repeats of every (trace, policy) cell. */
    std::uint32_t repeats = 3;

    /** Policies to measure; empty = every registered base policy. */
    std::vector<std::string> policies;

    /**
     * Measure the generic (virtual-observer) access path instead of
     * the specialized one; for A/B comparisons.
     */
    bool genericPath = false;
};

/** Measured throughput of one policy across all traces and repeats. */
struct HotpathPolicyResult
{
    std::string policy;

    /** Accesses replayed, summed over traces and repeats. */
    std::uint64_t totalAccesses = 0;

    /** Wall seconds spent replaying, summed the same way. */
    double totalSeconds = 0.0;

    /**
     * Throughput of the best (fastest) repeat across the trace set.
     * Best-of, not mean-of, so one scheduler hiccup cannot trip the
     * CI regression gate.
     */
    double accessesPerSec = 0.0;

    /** Nearest-rank percentiles of per-cell wall time. */
    double p50CellMs = 0.0;
    double p95CellMs = 0.0;

    /**
     * totalMisses() summed over traces on the first repeat — a
     * determinism fingerprint, identical on every host and on both
     * access paths.
     */
    std::uint64_t misses = 0;
};

/** One full benchmark run. */
struct HotpathReport
{
    std::uint32_t scaleLinear = 0;  ///< GLLC_SCALE of the real traces
    std::size_t syntheticAccesses = 0;
    std::uint32_t realFrames = 0;
    std::uint32_t repeats = 0;
    bool genericPath = false;
    std::vector<HotpathPolicyResult> policies;
};

/**
 * Deterministic synthetic LLC trace mimicking the stream mix of a
 * rendered frame (Zipf-reused textures, streaming render-target and
 * display writes, read-write Z): same (accesses, seed) → byte-equal
 * trace on every host.
 */
FrameTrace syntheticHotpathTrace(std::size_t accesses,
                                 std::uint64_t seed);

/** Run the benchmark. */
HotpathReport runHotpathBench(const HotpathOptions &options);

/** Serialize @p report as "gllc-hotpath-v1" JSON. */
void writeHotpathJson(std::ostream &os, const HotpathReport &report);

/** Print the human-readable throughput table. */
void writeHotpathTable(std::ostream &os, const HotpathReport &report);

} // namespace gllc

#endif // GLLC_BENCH_HOTPATH_HH
