/**
 * @file
 * Shared harness for the performance figures (15, 16, 17): full GPU
 * simulation (render caches -> LLC -> DDR3 -> frame-time model) of
 * the frame set under several policies, reporting frame rates
 * normalized to the DRRIP baseline.
 *
 * Following Section 5.2, every policy here runs with uncached
 * displayable color ("NRU, GS-DRRIP, GSPC, and DRRIP will stand for
 * NRU+UCD, GS-DRRIP+UCD, GSPC+UCD, and DRRIP+UCD").
 *
 * Like the sweep engine, the (frame, policy) simulations are
 * independent: frames fan out over a ThreadPool (GLLC_THREADS) and
 * the per-frame results are merged in frame-set order, so the
 * output is identical to a serial run.
 */

#ifndef GLLC_BENCH_PERF_UTIL_HH
#define GLLC_BENCH_PERF_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

/** Simulate the frame set on @p gpu and print normalized FPS. */
inline void
runPerfFigure(const std::string &what, const GpuConfig &gpu,
              const std::vector<std::string> &policies,
              const std::string &baseline = "DRRIP+UCD")
{
    const RenderScale scale = scaleFromEnv();
    const auto frames = frameSetFromEnv();
    const unsigned nthreads = sweepThreads();

    std::cout << "=== " << what << " ===\n"
              << "GPU: " << gpu.shaderCores << " cores x "
              << gpu.threadsPerCore << " threads, " << gpu.samplers
              << " samplers, LLC "
              << (gpu.llcCapacityBytes >> 20) << " MB (scaled /"
              << scale.pixelScale() << "), " << gpu.dram.name
              << ", scale " << scale.linear << ", " << nthreads
              << " thread(s)\n\n";

    // Each frame task renders its trace once and simulates every
    // policy; results land in per-frame slots merged in frame-set
    // order below, so the output matches a serial run exactly.
    std::vector<std::map<std::string, double>> frame_fps(
        frames.size());
    {
        ThreadPool pool(nthreads);
        pool.parallelFor(frames.size(), [&](std::size_t i) {
            const FrameSpec &spec = frames[i];
            const FrameTrace trace = cachedRenderFrame(
                *spec.app, spec.frameIndex, scale);
            for (const std::string &p : policies) {
                frame_fps[i][p] =
                    simulateFrame(trace, policySpec(p), gpu, scale)
                        .timing.fps;
            }
        });
    }

    // fps per (app, policy) averaged over the app's frames, plus the
    // overall per-frame normalized means.
    std::map<std::string, std::map<std::string, double>> app_fps;
    std::map<std::string, std::uint32_t> app_frames;
    std::map<std::string, double> norm_sum;
    double mean_fps_count = 0;
    std::map<std::string, double> mean_fps;

    for (std::size_t i = 0; i < frames.size(); ++i) {
        const FrameSpec &spec = frames[i];
        const std::map<std::string, double> &fps = frame_fps[i];
        for (const std::string &p : policies) {
            app_fps[spec.app->name][p] += fps.at(p);
            mean_fps[p] += fps.at(p);
            norm_sum[p] += fps.at(p) / fps.at(baseline);
        }
        ++app_frames[spec.app->name];
        mean_fps_count += 1;
    }

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);
    for (const AppProfile &app : paperApps()) {
        const auto it = app_fps.find(app.name);
        if (it == app_fps.end())
            continue;
        std::vector<std::string> row{app.name};
        const double base = it->second.at(baseline);
        for (const std::string &p : policies) {
            if (p != baseline)
                row.push_back(fmt(it->second.at(p) / base, 3));
        }
        tp.addRow(std::move(row));
    }
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies) {
        if (p != baseline)
            mean_row.push_back(fmt(norm_sum.at(p) / mean_fps_count, 3));
    }
    tp.addRow(std::move(mean_row));

    std::cout << "frame rate normalized to " << baseline << "\n";
    tp.print(std::cout);
    std::cout << "\nabsolute mean fps:";
    for (const std::string &p : policies) {
        std::cout << "  " << p << " "
                  << fmt(mean_fps.at(p) / mean_fps_count, 1);
    }
    std::cout << "\n\n";
}

} // namespace gllc

#endif // GLLC_BENCH_PERF_UTIL_HH
