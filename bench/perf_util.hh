/**
 * @file
 * Shared harness for the performance figures (15, 16, 17): full GPU
 * simulation (render caches -> LLC -> DDR3 -> frame-time model) of
 * the frame set under several policies, reporting frame rates
 * normalized to the DRRIP baseline.
 *
 * Following Section 5.2, every policy here runs with uncached
 * displayable color ("NRU, GS-DRRIP, GSPC, and DRRIP will stand for
 * NRU+UCD, GS-DRRIP+UCD, GSPC+UCD, and DRRIP+UCD").
 */

#ifndef GLLC_BENCH_PERF_UTIL_HH
#define GLLC_BENCH_PERF_UTIL_HH

#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

/** Simulate the frame set on @p gpu and print normalized FPS. */
inline void
runPerfFigure(const std::string &what, const GpuConfig &gpu,
              const std::vector<std::string> &policies,
              const std::string &baseline = "DRRIP+UCD")
{
    const RenderScale scale = scaleFromEnv();
    const auto frames = frameSetFromEnv();

    std::cout << "=== " << what << " ===\n"
              << "GPU: " << gpu.shaderCores << " cores x "
              << gpu.threadsPerCore << " threads, " << gpu.samplers
              << " samplers, LLC "
              << (gpu.llcCapacityBytes >> 20) << " MB (scaled /"
              << scale.pixelScale() << "), " << gpu.dram.name
              << ", scale " << scale.linear << "\n\n";

    // fps per (app, policy) averaged over the app's frames, plus the
    // overall per-frame normalized means.
    std::map<std::string, std::map<std::string, double>> app_fps;
    std::map<std::string, std::uint32_t> app_frames;
    std::map<std::string, double> norm_sum;
    double mean_fps_baseline = 0, mean_fps_count = 0;
    std::map<std::string, double> mean_fps;

    for (const FrameSpec &spec : frames) {
        const FrameTrace trace =
            cachedRenderFrame(*spec.app, spec.frameIndex, scale);
        std::map<std::string, double> fps;
        for (const std::string &p : policies) {
            const FrameSimResult r =
                simulateFrame(trace, policySpec(p), gpu, scale);
            fps[p] = r.timing.fps;
            app_fps[spec.app->name][p] += r.timing.fps;
            mean_fps[p] += r.timing.fps;
        }
        ++app_frames[spec.app->name];
        for (const std::string &p : policies)
            norm_sum[p] += fps.at(p) / fps.at(baseline);
        mean_fps_baseline += fps.at(baseline);
        mean_fps_count += 1;
    }

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);
    for (const AppProfile &app : paperApps()) {
        const auto it = app_fps.find(app.name);
        if (it == app_fps.end())
            continue;
        std::vector<std::string> row{app.name};
        const double base = it->second.at(baseline);
        for (const std::string &p : policies) {
            if (p != baseline)
                row.push_back(fmt(it->second.at(p) / base, 3));
        }
        tp.addRow(std::move(row));
    }
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies) {
        if (p != baseline)
            mean_row.push_back(fmt(norm_sum.at(p) / mean_fps_count, 3));
    }
    tp.addRow(std::move(mean_row));

    std::cout << "frame rate normalized to " << baseline << "\n";
    tp.print(std::cout);
    std::cout << "\nabsolute mean fps:";
    for (const std::string &p : policies) {
        std::cout << "  " << p << " "
                  << fmt(mean_fps.at(p) / mean_fps_count, 1);
    }
    std::cout << "\n\n";
}

} // namespace gllc

#endif // GLLC_BENCH_PERF_UTIL_HH
