/**
 * @file
 * Shared harness for the performance figures (15, 16, 17): full GPU
 * simulation (render caches -> LLC -> DDR3 -> frame-time model) of
 * the frame set under several policies, reporting frame rates
 * normalized to the DRRIP baseline.
 *
 * Following Section 5.2, every policy here runs with uncached
 * displayable color ("NRU, GS-DRRIP, GSPC, and DRRIP will stand for
 * NRU+UCD, GS-DRRIP+UCD, GSPC+UCD, and DRRIP+UCD").
 *
 * Like the sweep engine, the (frame, policy) simulations are
 * independent and fan out over a ThreadPool (GLLC_THREADS) in
 * windows of frames; finished windows merge in frame-set order, so
 * the output is identical to a serial run.  The harness shares the
 * sweep engine's observability surface: the cells/s + ETA progress
 * meter, trace-event spans per cell and per window phase, metrics
 * counters under "perf.", and the "--csv <path>" / "--json <path>"
 * export flags.
 */

#ifndef GLLC_BENCH_PERF_UTIL_HH
#define GLLC_BENCH_PERF_UTIL_HH

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/metrics.hh"
#include "common/progress.hh"
#include "common/thread_pool.hh"
#include "common/trace_event.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

/** One (app, frame, policy) result of a perf figure. */
struct PerfCell
{
    std::string app;
    std::uint32_t frameIndex = 0;
    std::string policy;
    double fps = 0.0;
};

/** CSV export: one row per (app, frame, policy) cell. */
inline void
writePerfCsv(std::ostream &os, const std::vector<PerfCell> &cells)
{
    os << "app,frame,policy,fps\n";
    for (const PerfCell &c : cells) {
        os << c.app << ',' << c.frameIndex << ',' << c.policy << ','
           << fmt(c.fps, 3) << '\n';
    }
}

/** JSON export: {"figure", "policies", "cells"}. */
inline void
writePerfJson(std::ostream &os, const std::string &what,
              const std::vector<std::string> &policies,
              const std::vector<PerfCell> &cells)
{
    os << "{\n  \"figure\": \"" << what << "\",\n  \"policies\": [";
    for (std::size_t i = 0; i < policies.size(); ++i) {
        os << (i ? ", " : "") << '"' << policies[i] << '"';
    }
    os << "],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
        const PerfCell &c = cells[i];
        os << "    {\"app\": \"" << c.app << "\", \"frame\": "
           << c.frameIndex << ", \"policy\": \"" << c.policy
           << "\", \"fps\": " << fmt(c.fps, 3) << '}'
           << (i + 1 < cells.size() ? "," : "") << '\n';
    }
    os << "  ]\n}\n";
}

/**
 * Write the "--csv <path>" / "--json <path>" exports a BenchCli
 * parsed (the same flags the sweep-based harnesses take).
 */
inline void
exportPerfFigure(const BenchCli &cli, const std::string &what,
                 const std::vector<std::string> &policies,
                 const std::vector<PerfCell> &cells)
{
    if (!cli.csvPath().empty()) {
        std::ofstream os(cli.csvPath());
        if (!os) {
            warn("cannot write %s", cli.csvPath().c_str());
        } else {
            writePerfCsv(os, cells);
            std::cout << "wrote " << cli.csvPath() << "\n";
        }
    }
    if (!cli.jsonPath().empty()) {
        std::ofstream os(cli.jsonPath());
        if (!os) {
            warn("cannot write %s", cli.jsonPath().c_str());
        } else {
            writePerfJson(os, what, policies, cells);
            std::cout << "wrote " << cli.jsonPath() << "\n";
        }
    }
}

/**
 * Simulate the frame set on @p gpu and print normalized FPS; pass
 * main's BenchCli through for the shared export flags.
 */
inline void
runPerfFigure(const std::string &what, const GpuConfig &gpu,
              const std::vector<std::string> &policies,
              const BenchCli &cli,
              const std::string &baseline = "DRRIP+UCD")
{
    const RenderScale scale = scaleFromEnv();
    const auto frames = frameSetFromEnv();
    const unsigned nthreads = sweepThreads();
    const bool metrics = metricsActive();

    std::cout << "=== " << what << " ===\n"
              << "GPU: " << gpu.shaderCores << " cores x "
              << gpu.threadsPerCore << " threads, " << gpu.samplers
              << " samplers, LLC "
              << (gpu.llcCapacityBytes >> 20) << " MB (scaled /"
              << scale.pixelScale() << "), " << gpu.dram.name
              << ", scale " << scale.linear << ", " << nthreads
              << " thread(s)\n\n";

    // Windowed two-phase fan-out mirroring the sweep engine: a
    // window of frames renders + simulates in parallel, then one
    // thread merges the window in frame-set order (bit-identical to
    // a serial run) and advances the shared progress meter.
    const std::size_t total_cells = frames.size() * policies.size();
    ProgressMeter meter(progressEnabled(), total_cells, "perf");
    std::vector<std::map<std::string, double>> frame_fps(
        frames.size());
    const std::size_t window =
        std::max<std::size_t>(1, 2 * nthreads);
    std::size_t cells_done = 0;
    {
        ThreadPool pool(nthreads);
        for (std::size_t base = 0; base < frames.size();
             base += window) {
            const std::size_t block =
                std::min(window, frames.size() - base);
            const std::string window_tag = "frames "
                + std::to_string(base) + ".."
                + std::to_string(base + block - 1);
            {
                TraceSpan span("phase", "simulate " + window_tag);
                pool.parallelFor(block, [&](std::size_t k) {
                    const std::size_t i = base + k;
                    const FrameSpec &spec = frames[i];
                    const FrameTrace trace = cachedRenderFrame(
                        *spec.app, spec.frameIndex, scale);
                    for (const std::string &p : policies) {
                        TraceSpan cell(
                            "cell",
                            spec.app->name + " frame "
                                + std::to_string(spec.frameIndex)
                                + " " + p,
                            {{"app", spec.app->name},
                             {"frame",
                              std::to_string(spec.frameIndex)},
                             {"policy", p}});
                        frame_fps[i][p] =
                            simulateFrame(trace, policySpec(p), gpu,
                                          scale)
                                .timing.fps;
                    }
                });
            }
            TraceSpan span("phase", "merge " + window_tag);
            cells_done += block * policies.size();
            if (metrics) {
                MetricsRegistry::instance().addCounter(
                    "perf.cells_done", block * policies.size());
                MetricsRegistry::instance().addCounter(
                    "perf.frames_done", block);
            }
            meter.update(cells_done);
        }
    }

    // fps per (app, policy) averaged over the app's frames, plus the
    // overall per-frame normalized means.
    std::map<std::string, std::map<std::string, double>> app_fps;
    std::map<std::string, std::uint32_t> app_frames;
    std::map<std::string, double> norm_sum;
    double mean_fps_count = 0;
    std::map<std::string, double> mean_fps;
    std::vector<PerfCell> cells;
    cells.reserve(total_cells);

    for (std::size_t i = 0; i < frames.size(); ++i) {
        const FrameSpec &spec = frames[i];
        const std::map<std::string, double> &fps = frame_fps[i];
        for (const std::string &p : policies) {
            app_fps[spec.app->name][p] += fps.at(p);
            mean_fps[p] += fps.at(p);
            norm_sum[p] += fps.at(p) / fps.at(baseline);
            cells.push_back({spec.app->name, spec.frameIndex, p,
                             fps.at(p)});
        }
        ++app_frames[spec.app->name];
        mean_fps_count += 1;
    }

    std::vector<std::string> header{"app"};
    for (const std::string &p : policies) {
        if (p != baseline)
            header.push_back(p);
    }
    TablePrinter tp(header);
    for (const AppProfile &app : paperApps()) {
        const auto it = app_fps.find(app.name);
        if (it == app_fps.end())
            continue;
        std::vector<std::string> row{app.name};
        const double base = it->second.at(baseline);
        for (const std::string &p : policies) {
            if (p != baseline)
                row.push_back(fmt(it->second.at(p) / base, 3));
        }
        tp.addRow(std::move(row));
    }
    std::vector<std::string> mean_row{"MEAN"};
    for (const std::string &p : policies) {
        if (p != baseline)
            mean_row.push_back(fmt(norm_sum.at(p) / mean_fps_count, 3));
    }
    tp.addRow(std::move(mean_row));

    std::cout << "frame rate normalized to " << baseline << "\n";
    tp.print(std::cout);
    std::cout << "\nabsolute mean fps:";
    for (const std::string &p : policies) {
        std::cout << "  " << p << " "
                  << fmt(mean_fps.at(p) / mean_fps_count, 1);
    }
    std::cout << "\n\n";

    exportPerfFigure(cli, what, policies, cells);
}

} // namespace gllc

#endif // GLLC_BENCH_PERF_UTIL_HH
