/**
 * @file
 * Ablation: physical page scattering and SHiP-mem.
 *
 * Section 5.1 explains SHiP-mem's failure: "a 16 KB contiguous
 * physical address region contains blocks from different streams and
 * as a result, it is not possible to decipher the correct behavior
 * of a stream."  The workload's driver-fragmentation model produces
 * exactly such mixed regions.  This harness disables the scattering
 * (identity page mapping, so each 16 KB region holds a single
 * surface) to isolate how much of SHiP-mem's gap is region impurity
 * versus region granularity being wrong for graphics outright (the
 * reuse of a texture's blocks is heterogeneous within one surface),
 * while GSPC, which reads the stream identity directly, should be
 * indifferent.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const std::vector<std::string> policies{"DRRIP", "SHiP-mem",
                                            "GSPC+UCD"};

    std::cout << "=== Ablation: page scattering vs SHiP-mem (scale "
              << scaleFromEnv().linear << ") ===\n\n";

    TablePrinter tp({"page mapping", "SHiP-mem vs DRRIP",
                     "GSPC+UCD vs DRRIP"});
    // This bench runs two sweeps under different scales, so the
    // shared --checkpoint flag cannot apply (a journal pins one
    // configuration); quarantine handling still does.
    int exit_code = 0;
    for (const bool scatter : {true, false}) {
        RenderScale scale = scaleFromEnv();
        scale.scatterPages = scatter;
        const SweepResult sweep =
            SweepConfig().policies(policies).scale(scale).run();
        exit_code = std::max(exit_code, benchExitCode(sweep));

        std::map<std::string, double> misses;
        for (const SweepCell &cell : sweep.cells())
            misses[cell.key.policy] += missMetric(cell.result);

        tp.addRow({scatter ? "scattered (driver model)"
                           : "identity (stream-pure regions)",
                   fmt(misses.at("SHiP-mem") / misses.at("DRRIP"), 4),
                   fmt(misses.at("GSPC+UCD") / misses.at("DRRIP"),
                       4)});
    }
    tp.print(std::cout);
    return exit_code;
}
