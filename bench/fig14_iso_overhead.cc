/**
 * @file
 * Figure 14: iso-overhead comparison.  LRU, four-bit DRRIP, four-bit
 * GS-DRRIP and GSPC all spend four replacement-state bits per block;
 * misses are normalized to two-bit DRRIP.
 *
 * Paper averages: LRU +7.2%, DRRIP-4 -0.4%, GS-DRRIP-4 -1.7%,
 * GSPC -11.8% — GSPC's two extra state bits buy far more than a
 * wider RRPV.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "LRU", "DRRIP-4", "GS-DRRIP-4",
                       "GSPC"}))
            .run();
    benchBanner("Figure 14: iso-overhead policies (4 state bits)",
                sweep);
    sweep.printNormalizedTable(std::cout, "LLC misses", missMetric,
                               "DRRIP");
    return cli.finish(sweep);
}
