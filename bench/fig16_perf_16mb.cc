/**
 * @file
 * Figure 16: rendering performance on a 16 MB 16-way LLC.
 *
 * Paper averages: NRU -3%, GS-DRRIP +4%, GSPC +11.8% (up to +27% in
 * Assassin's Creed); GSPC's absolute frame rate improves 24.1% over
 * its own 8 MB result.
 */

#include "bench/perf_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    runPerfFigure("Figure 16: performance on the 16 MB LLC",
                  GpuConfig::baseline16M(),
                  {"DRRIP+UCD", "NRU+UCD", "GS-DRRIP+UCD",
                   "GSPC+UCD"}, cli);
    return 0;
}
