/**
 * @file
 * Ablation: GSPC learning-counter widths.
 *
 * The paper uses 8-bit FILL/HIT/PROD/CONS counters halved whenever
 * the 7-bit ACC(ALL) counter saturates.  Narrower counters quantize
 * the learned reuse probabilities and halve more often (shorter
 * memory); wider ones react more slowly to phase changes.  The
 * paper's hardware budget (284 counter bits per 4-bank LLC) assumes
 * the 8/7 design point; this harness quantifies what the bits buy.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/gspc_family.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    struct Variant
    {
        const char *label;
        unsigned counterBits;
        unsigned accBits;
    };
    const std::vector<Variant> variants{
        {"4-bit / 3-bit ACC", 4, 3},
        {"6-bit / 5-bit ACC", 6, 5},
        {"8-bit / 7-bit ACC (paper)", 8, 7},
        {"10-bit / 9-bit ACC", 10, 9},
    };

    // The width variants enter the sweep through the registry-free
    // spec path.
    std::vector<PolicySpec> specs;
    for (const Variant &v : variants) {
        GspcParams params;
        params.counterBits = v.counterBits;
        params.accBits = v.accBits;
        PolicySpec spec;
        spec.name = v.label;
        spec.baseName = "GSPC";
        spec.factory =
            GspcFamilyPolicy::factory(GspcVariant::Gspc, params);
        spec.uncachedDisplay = true;
        specs.push_back(std::move(spec));
    }

    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policySpecs(std::move(specs)))
            .run();
    benchBanner("Ablation: GSPC counter widths", sweep);

    std::map<std::string, double> misses;
    for (const SweepCell &cell : sweep.cells())
        misses[cell.key.policy] += missMetric(cell.result);

    const double base = misses.at("8-bit / 7-bit ACC (paper)");
    TablePrinter tp({"counter width", "misses vs paper design"});
    for (const Variant &v : variants)
        tp.addRow({v.label, fmt(misses.at(v.label) / base, 4)});
    tp.print(std::cout);
    return cli.finish(sweep);
}
