/**
 * @file
 * Ablation: GSPC learning-counter widths.
 *
 * The paper uses 8-bit FILL/HIT/PROD/CONS counters halved whenever
 * the 7-bit ACC(ALL) counter saturates.  Narrower counters quantize
 * the learned reuse probabilities and halve more often (shorter
 * memory); wider ones react more slowly to phase changes.  The
 * paper's hardware budget (284 counter bits per 4-bank LLC) assumes
 * the 8/7 design point; this harness quantifies what the bits buy.
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "bench/bench_util.hh"
#include "core/gspc_family.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main()
{
    const RenderScale scale = scaleFromEnv();
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    struct Variant
    {
        const char *label;
        unsigned counterBits;
        unsigned accBits;
    };
    const std::vector<Variant> variants{
        {"4-bit / 3-bit ACC", 4, 3},
        {"6-bit / 5-bit ACC", 6, 5},
        {"8-bit / 7-bit ACC (paper)", 8, 7},
        {"10-bit / 9-bit ACC", 10, 9},
    };

    std::cout << "=== Ablation: GSPC counter widths (scale "
              << scale.linear << ") ===\n\n";

    std::map<std::string, double> misses;
    for (const FrameSpec &spec : frameSetFromEnv()) {
        const FrameTrace trace =
            renderFrame(*spec.app, spec.frameIndex, scale);
        for (const Variant &v : variants) {
            GspcParams params;
            params.counterBits = v.counterBits;
            params.accBits = v.accBits;
            PolicySpec policy;
            policy.name = v.label;
            policy.factory =
                GspcFamilyPolicy::factory(GspcVariant::Gspc, params);
            policy.uncachedDisplay = true;
            misses[v.label] += missMetric(runTrace(trace, policy, llc));
        }
    }

    const double base = misses.at("8-bit / 7-bit ACC (paper)");
    TablePrinter tp({"counter width", "misses vs paper design"});
    for (const Variant &v : variants)
        tp.addRow({v.label, fmt(misses.at(v.label) / base, 4)});
    tp.print(std::cout);
    return 0;
}
