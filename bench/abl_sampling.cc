/**
 * @file
 * Ablation: GSPC sample-set density.
 *
 * The paper dedicates 16 of every 1024 sets to learning (density
 * 1/64).  Sparser sampling starves the counters (slow adaptation to
 * phase changes within a frame); denser sampling wastes more of the
 * cache on SRRIP-managed sets that forgo the policy's benefit.  This
 * harness sweeps the density and reports misses normalized to the
 * paper's design point.
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "core/gspc_family.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    // sampleLog2: 4 -> 1/16 density, 6 -> 1/64 (paper), 8 -> 1/256.
    const std::vector<unsigned> densities{4, 5, 6, 7, 8};

    std::vector<PolicySpec> specs;
    for (const unsigned log2 : densities) {
        GspcParams params;
        params.sampleLog2 = log2;
        PolicySpec spec;
        spec.name = "GSPC(1/" + std::to_string(1u << log2) + ")";
        spec.baseName = "GSPC";
        spec.factory =
            GspcFamilyPolicy::factory(GspcVariant::Gspc, params);
        spec.uncachedDisplay = true;
        specs.push_back(std::move(spec));
    }

    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policySpecs(std::move(specs)))
            .run();
    benchBanner("Ablation: GSPC sample-set density", sweep);

    std::map<std::string, double> misses;
    for (const SweepCell &cell : sweep.cells())
        misses[cell.key.policy] += missMetric(cell.result);

    TablePrinter tp({"sample density", "misses vs 1/64"});
    for (const unsigned log2 : densities) {
        const std::string name =
            "GSPC(1/" + std::to_string(1u << log2) + ")";
        tp.addRow({"1/" + std::to_string(1u << log2),
                   fmt(misses.at(name) / misses.at("GSPC(1/64)"),
                       4)});
    }
    tp.print(std::cout);
    return cli.finish(sweep);
}
