/**
 * @file
 * Ablation: GSPC sample-set density.
 *
 * The paper dedicates 16 of every 1024 sets to learning (density
 * 1/64).  Sparser sampling starves the counters (slow adaptation to
 * phase changes within a frame); denser sampling wastes more of the
 * cache on SRRIP-managed sets that forgo the policy's benefit.  This
 * harness sweeps the density and reports misses normalized to the
 * paper's design point.
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "bench/bench_util.hh"
#include "core/gspc_family.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main()
{
    const RenderScale scale = scaleFromEnv();
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    // sampleLog2: 4 -> 1/16 density, 6 -> 1/64 (paper), 8 -> 1/256.
    const std::vector<unsigned> densities{4, 5, 6, 7, 8};

    std::cout << "=== Ablation: GSPC sample-set density (scale "
              << scale.linear << ") ===\n\n";

    std::map<unsigned, double> misses;
    std::uint64_t frames = 0;
    for (const FrameSpec &spec : frameSetFromEnv()) {
        const FrameTrace trace =
            renderFrame(*spec.app, spec.frameIndex, scale);
        for (const unsigned log2 : densities) {
            GspcParams params;
            params.sampleLog2 = log2;
            PolicySpec policy;
            policy.name = "GSPC(1/" + std::to_string(1u << log2) + ")";
            policy.factory =
                GspcFamilyPolicy::factory(GspcVariant::Gspc, params);
            policy.uncachedDisplay = true;
            misses[log2] += missMetric(runTrace(trace, policy, llc));
        }
        ++frames;
    }

    TablePrinter tp({"sample density", "misses vs 1/64"});
    for (const unsigned log2 : densities) {
        tp.addRow({"1/" + std::to_string(1u << log2),
                   fmt(misses.at(log2) / misses.at(6), 4)});
    }
    tp.print(std::cout);
    std::cout << "(" << frames << " frames)\n";
    return 0;
}
