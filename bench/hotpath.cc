#include "bench/hotpath.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "analysis/offline_sim.hh"
#include "analysis/policy_table.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "workload/frame_set.hh"
#include "workload/trace_cache.hh"

namespace gllc
{

namespace
{

/** Nearest-rank percentile of an unsorted sample (p in [0, 100]). */
double
percentile(std::vector<double> sample, double p)
{
    GLLC_ASSERT(!sample.empty());
    std::sort(sample.begin(), sample.end());
    const double rank = p / 100.0 * static_cast<double>(sample.size());
    std::size_t idx =
        rank <= 1.0 ? 0 : static_cast<std::size_t>(rank + 0.5) - 1;
    idx = std::min(idx, sample.size() - 1);
    return sample[idx];
}

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** "%.6g"-formatted double (stable, locale-independent). */
std::string
num(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

} // namespace

FrameTrace
syntheticHotpathTrace(std::size_t accesses, std::uint64_t seed)
{
    FrameTrace trace;
    trace.name = "synthetic/hotpath";
    trace.app = "synthetic";
    trace.accesses.reserve(accesses);

    Rng rng(seed);
    const ZipfSampler tex_pick(4096, 0.8);

    // Disjoint block-aligned regions per stream.
    constexpr Addr kTexBase = 0x0000'0000;
    constexpr Addr kZBase = 0x1000'0000;
    constexpr Addr kRtBase = 0x2000'0000;
    constexpr Addr kDispBase = 0x3000'0000;
    constexpr Addr kOtherBase = 0x4000'0000;
    constexpr std::uint64_t kZBlocks = 1u << 14;
    constexpr std::uint64_t kRtBlocks = 1u << 15;
    constexpr std::uint64_t kOtherBlocks = 1u << 12;

    std::uint64_t rt_cursor = 0;
    std::uint64_t disp_cursor = 0;
    std::uint32_t cycle = 0;
    for (std::size_t i = 0; i < accesses; ++i) {
        const std::uint64_t r = rng.below(100);
        MemAccess a;
        if (r < 45) {
            // Texture sampler reads, Zipf-reused assets.
            a = MemAccess(kTexBase
                              + (static_cast<Addr>(tex_pick.sample(rng))
                                 << kBlockShift),
                          StreamType::Texture, false, cycle);
        } else if (r < 65) {
            // Depth tests: read-write over a screen-sized buffer.
            a = MemAccess(kZBase
                              + (rng.below(kZBlocks) << kBlockShift),
                          StreamType::Z, rng.chance(0.5), cycle);
        } else if (r < 85) {
            // Render-target writes, streaming with light revisits.
            rt_cursor = rng.chance(0.9) ? rt_cursor + 1
                                        : rng.below(kRtBlocks);
            a = MemAccess(kRtBase
                              + ((rt_cursor % kRtBlocks)
                                 << kBlockShift),
                          StreamType::RenderTarget, true, cycle);
        } else if (r < 93) {
            // Displayable color: strictly streaming writes.
            disp_cursor = (disp_cursor + 1) % kRtBlocks;
            a = MemAccess(kDispBase + (disp_cursor << kBlockShift),
                          StreamType::Display, true, cycle);
        } else {
            // Shader code / constants / misc reads.
            a = MemAccess(kOtherBase
                              + (rng.below(kOtherBlocks)
                                 << kBlockShift),
                          StreamType::Other, false, cycle);
        }
        trace.accesses.push_back(a);
        cycle += static_cast<std::uint32_t>(rng.below(4));
    }
    trace.work.rawMemOps = accesses;
    return trace;
}

HotpathReport
runHotpathBench(const HotpathOptions &options)
{
    HotpathReport report;
    report.syntheticAccesses = options.syntheticAccesses;
    report.realFrames = options.realFrames;
    report.repeats = std::max<std::uint32_t>(1, options.repeats);
    report.genericPath = options.genericPath;

    const RenderScale scale = scaleFromEnv();
    report.scaleLinear = scale.linear;

    std::vector<FrameTrace> traces;
    traces.push_back(syntheticHotpathTrace(options.syntheticAccesses,
                                           options.seed));
    for (std::uint32_t f = 0; f < options.realFrames; ++f)
        traces.push_back(
            cachedRenderFrame(paperApps()[f % paperApps().size()],
                              f, scale));

    std::vector<std::string> names = options.policies;
    if (names.empty())
        names = allPolicyNames();

    const LlcConfig config =
        scaledLlcConfig(8ull << 20, scale.linear * scale.linear);
    RunOptions run_options;
    run_options.forceGenericPath = options.genericPath;

    for (const std::string &name : names) {
        const PolicySpec spec = policySpec(name);
        HotpathPolicyResult out;
        out.policy = name;
        std::vector<double> cell_ms;
        for (std::uint32_t rep = 0; rep < report.repeats; ++rep) {
            double rep_seconds = 0.0;
            std::uint64_t rep_accesses = 0;
            for (const FrameTrace &trace : traces) {
                const auto start = std::chrono::steady_clock::now();
                const RunResult r =
                    runTrace(trace, spec, config, run_options);
                const double secs = secondsSince(start);
                cell_ms.push_back(secs * 1e3);
                rep_seconds += secs;
                rep_accesses += trace.accesses.size();
                if (rep == 0)
                    out.misses += r.stats.totalMisses();
            }
            out.totalSeconds += rep_seconds;
            out.totalAccesses += rep_accesses;
            // Best repeat, not the mean: the minimum-interference
            // pass is the reproducible one, so the regression gate
            // does not trip on scheduler noise.
            if (rep_seconds > 0.0)
                out.accessesPerSec = std::max(
                    out.accessesPerSec,
                    static_cast<double>(rep_accesses) / rep_seconds);
        }
        out.p50CellMs = percentile(cell_ms, 50.0);
        out.p95CellMs = percentile(cell_ms, 95.0);
        report.policies.push_back(std::move(out));
    }
    return report;
}

void
writeHotpathJson(std::ostream &os, const HotpathReport &report)
{
    os << "{\n"
       << "  \"schema\": \"" << kHotpathSchema << "\",\n"
       << "  \"config\": {\n"
       << "    \"scale\": " << report.scaleLinear << ",\n"
       << "    \"synthetic_accesses\": " << report.syntheticAccesses
       << ",\n"
       << "    \"real_frames\": " << report.realFrames << ",\n"
       << "    \"repeats\": " << report.repeats << ",\n"
       << "    \"generic_path\": "
       << (report.genericPath ? "true" : "false") << "\n"
       << "  },\n"
       << "  \"policies\": [\n";
    for (std::size_t i = 0; i < report.policies.size(); ++i) {
        const HotpathPolicyResult &p = report.policies[i];
        os << "    {\"policy\": \"" << p.policy << "\", "
           << "\"total_accesses\": " << p.totalAccesses << ", "
           << "\"total_seconds\": " << num(p.totalSeconds) << ", "
           << "\"accesses_per_sec\": " << num(p.accessesPerSec)
           << ", "
           << "\"p50_cell_ms\": " << num(p.p50CellMs) << ", "
           << "\"p95_cell_ms\": " << num(p.p95CellMs) << ", "
           << "\"misses\": " << p.misses << "}"
           << (i + 1 < report.policies.size() ? "," : "") << "\n";
    }
    os << "  ]\n"
       << "}\n";
}

void
writeHotpathTable(std::ostream &os, const HotpathReport &report)
{
    os << "=== replay hot path ("
       << (report.genericPath ? "generic" : "specialized")
       << " path, scale " << report.scaleLinear << ", "
       << report.syntheticAccesses << " synthetic + "
       << report.realFrames << " real frame(s), " << report.repeats
       << " repeat(s)) ===\n";
    char line[160];
    std::snprintf(line, sizeof(line), "%-16s %14s %12s %12s %12s\n",
                  "policy", "accesses/sec", "p50 ms", "p95 ms",
                  "misses");
    os << line;
    for (const HotpathPolicyResult &p : report.policies) {
        std::snprintf(line, sizeof(line),
                      "%-16s %14.3e %12.2f %12.2f %12llu\n",
                      p.policy.c_str(), p.accessesPerSec, p.p50CellMs,
                      p.p95CellMs,
                      static_cast<unsigned long long>(p.misses));
        os << line;
    }
}

} // namespace gllc
