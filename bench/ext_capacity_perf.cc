/**
 * @file
 * Extension: performance vs LLC capacity.
 *
 * Figures 15/16 give two points (8 and 16 MB); this harness traces
 * the whole curve from 4 to 32 MB for GSPC vs DRRIP (both +UCD),
 * showing where the paper's observation — the GSPC advantage grows
 * with capacity — saturates: once the render-to-texture working set
 * fits under protection, extra capacity helps both policies alike.
 */

#include <iostream>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/trace_cache.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const RenderScale scale = scaleFromEnv();
    const auto frames = frameSetFromEnv();

    std::cout << "=== Extension: GSPC speedup vs LLC capacity "
              << "(scale " << scale.linear << ") ===\n\n";

    TablePrinter tp({"LLC (full-scale)", "GSPC+UCD speedup",
                     "GSPC+UCD miss ratio"});

    ThreadPool pool(sweepThreads());
    for (const std::uint64_t mb : {4, 8, 16, 32}) {
        GpuConfig gpu = GpuConfig::baseline();
        gpu.llcCapacityBytes = mb << 20;

        // (speedup, miss ratio) per frame, merged in frame order.
        std::vector<std::pair<double, double>> per_frame(
            frames.size());
        pool.parallelFor(frames.size(), [&](std::size_t i) {
            const FrameSpec &spec = frames[i];
            const FrameTrace trace = cachedRenderFrame(
                *spec.app, spec.frameIndex, scale);
            const FrameSimResult drrip = simulateFrame(
                trace, policySpec("DRRIP+UCD"), gpu, scale);
            const FrameSimResult gspc = simulateFrame(
                trace, policySpec("GSPC+UCD"), gpu, scale);
            per_frame[i] = {
                gspc.timing.fps / drrip.timing.fps,
                static_cast<double>(gspc.llcStats.totalMisses())
                    / static_cast<double>(
                          drrip.llcStats.totalMisses())};
        });

        double speedup_sum = 0, ratio_sum = 0, n = 0;
        for (const auto &[speedup, ratio] : per_frame) {
            speedup_sum += speedup;
            ratio_sum += ratio;
            n += 1;
        }
        tp.addRow({std::to_string(mb) + " MB",
                   fmt(speedup_sum / n, 3), fmt(ratio_sum / n, 3)});
    }
    tp.print(std::cout);
    return 0;
}
