/**
 * @file
 * Figure 7 (Belady's optimal policy).  Upper panel: epoch-wise
 * distribution of the intra-stream texture sampler hits.  Lower
 * panel: death ratio of each texture epoch.
 *
 * Paper averages: E0 carries 79% of intra-stream texture hits, E1
 * 15%, E2 4%, E>=3 2%; death ratios E0 0.81, E1 0.73, E2 0.53.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"Belady"}))
            .run();
    benchBanner("Figure 7: texture sampler epochs under Belady",
                sweep);

    TablePrinter tp({"app", "E0 hits", "E1 hits", "E2 hits",
                     "E>=3 hits", "death E0", "death E1",
                     "death E2"});

    Characterization mean_ch;
    std::map<std::string, Characterization> per_app;
    for (const SweepCell &cell : sweep.cells()) {
        per_app[cell.key.app].merge(cell.result.characterization);
        mean_ch.merge(cell.result.characterization);
    }

    auto add_row = [&tp](const std::string &name,
                         const Characterization &ch) {
        double total = 0;
        for (const auto h : ch.texEpochHits)
            total += static_cast<double>(h);
        std::vector<std::string> row{name};
        for (unsigned k = 0; k < Characterization::kEpochs; ++k) {
            row.push_back(fmtPct(safeRatio(
                static_cast<double>(ch.texEpochHits[k]), total)));
        }
        for (unsigned k = 0; k < 3; ++k)
            row.push_back(fmt(ch.texDeathRatio(k), 2));
        tp.addRow(std::move(row));
    };

    for (const std::string &app : sweep.appOrder())
        add_row(app, per_app.at(app));
    add_row("ALL", mean_ch);
    tp.print(std::cout);
    return cli.finish(sweep);
}
