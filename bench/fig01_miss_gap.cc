/**
 * @file
 * Figure 1: LLC misses for NRU and Belady's optimal policy
 * normalized to two-bit DRRIP on the 8 MB 16-way LLC.
 *
 * Paper result: NRU averages ~1.062x DRRIP's misses; Belady's
 * optimal averages ~0.634x (36.6% savings).
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult result =
        cli.apply(SweepConfig()
            .policies({"DRRIP", "NRU", "Belady"}))
            .run();
    benchBanner("Figure 1: NRU and Belady vs DRRIP (LLC misses)",
                result);
    result.printNormalizedTable(std::cout, "LLC misses", missMetric,
                                "DRRIP");
    return cli.finish(result);
}
