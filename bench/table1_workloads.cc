/**
 * @file
 * Table 1: the DirectX applications, plus the properties of the
 * synthetic frames standing in for the captures (DESIGN.md).
 */

#include <iostream>

#include "bench/bench_util.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const RenderScale scale = scaleFromEnv();
    std::cout << "=== Table 1: DirectX applications (scale "
              << scale.linear << ") ===\n\n";

    TablePrinter tp({"Application", "DirectX", "Resolution", "frames",
                     "LLC accesses/frame", "distinct blocks"});
    for (const AppProfile &app : paperApps()) {
        const FrameTrace trace = renderFrame(app, 0, scale);
        tp.addRow({app.name, std::to_string(app.directxVersion),
                   std::to_string(app.width) + "x"
                       + std::to_string(app.height),
                   std::to_string(app.frames),
                   std::to_string(trace.accesses.size()),
                   std::to_string(trace.distinctBlocks())});
    }
    tp.print(std::cout);
    return 0;
}
