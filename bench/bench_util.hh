/**
 * @file
 * Shared helpers for the figure-regeneration benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper: it sweeps the 52-frame workload set under the relevant
 * policies and prints the same rows/series the paper plots.
 * Absolute values differ from the paper (the substrate is this
 * library's simulator, not the authors' testbed); EXPERIMENTS.md
 * compares the shapes.
 *
 * Environment knobs: GLLC_SCALE (default 4; 1 = paper-size machine)
 * and GLLC_FRAMES (default all 52).
 */

#ifndef GLLC_BENCH_BENCH_UTIL_HH
#define GLLC_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <string>

#include "analysis/sweep.hh"
#include "common/stats.hh"

namespace gllc
{

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const PolicySweep &sweep)
{
    std::cout << "=== " << what << " ===\n"
              << "LLC " << sweep.llcConfig().capacityBytes / 1024
              << " KB " << sweep.llcConfig().ways << "-way "
              << sweep.llcConfig().banks << "-bank, scale "
              << sweep.scale().linear << ", "
              << sweep.cells().size() << " (frame,policy) cells\n\n";
}

} // namespace gllc

#endif // GLLC_BENCH_BENCH_UTIL_HH
