/**
 * @file
 * Shared helpers for the figure-regeneration benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper: it sweeps the 52-frame workload set under the relevant
 * policies and prints the same rows/series the paper plots.
 * Absolute values differ from the paper (the substrate is this
 * library's simulator, not the authors' testbed); EXPERIMENTS.md
 * compares the shapes.
 *
 * Environment knobs: GLLC_SCALE (default 4; 1 = paper-size machine),
 * GLLC_FRAMES (default all 52) and GLLC_THREADS (default: hardware
 * concurrency; 1 = serial).  Every sweep-based harness also accepts
 * trailing "--csv <path>" / "--json <path>" arguments to dump the
 * per-cell results through the shared writers in analysis/report,
 * and "--stats" to print the metrics-registry snapshot on exit
 * (BenchObservability below).
 */

#ifndef GLLC_BENCH_BENCH_UTIL_HH
#define GLLC_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/stats.hh"

namespace gllc
{

/**
 * Per-bench observability switch: constructed first thing in every
 * bench main.  A "--stats" argument turns the metrics registry on
 * for the run and prints the merged snapshot (CSV) on stdout when
 * the bench finishes; GLLC_STATS_JSON / GLLC_TRACE_OUT work with or
 * without it.
 */
class BenchObservability
{
  public:
    BenchObservability(int argc, char **argv)
    {
        for (int i = 1; i < argc; ++i) {
            if (std::string(argv[i]) == "--stats") {
                stats_ = true;
                setMetricsActive(true);
            }
        }
    }

    ~BenchObservability()
    {
        if (!stats_)
            return;
        std::cout << "--- metrics snapshot ---\n";
        MetricsRegistry::instance().snapshot().writeCsv(std::cout);
    }

  private:
    bool stats_ = false;
};

/**
 * Exit code when a sweep finished with quarantined cells: the
 * artifacts exist but are partial, which scripted pipelines must be
 * able to tell apart from both success (0) and a crash/fatal (1).
 * 75 is EX_TEMPFAIL in sysexits.h: a re-run may well succeed.
 */
constexpr int kQuarantineExitCode = 75;

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const SweepResult &result)
{
    std::cout << "=== " << what << " ===\n"
              << "LLC " << result.llcConfig().capacityBytes / 1024
              << " KB " << result.llcConfig().ways << "-way "
              << result.llcConfig().banks << "-bank, scale "
              << result.scale().linear << ", "
              << result.cells().size() << " (frame,policy) cells, "
              << result.threadsUsed() << " thread(s), "
              << fmt(result.wallSeconds(), 1) << " s\n";
    if (result.restoredCells() > 0)
        std::cout << result.restoredCells()
                  << " cell(s) restored from checkpoint\n";
    if (!result.quarantined().empty())
        std::cout << result.quarantined().size()
                  << " cell(s) QUARANTINED (partial results)\n";
    std::cout << '\n';
}

/**
 * The exit status a sweep bench must return: lists any quarantined
 * cells on stderr and maps them to kQuarantineExitCode so CI and
 * scripts cannot mistake partial artifacts for complete ones.
 */
inline int
benchExitCode(const SweepResult &result)
{
    if (result.quarantined().empty())
        return 0;
    for (const QuarantinedCell &q : result.quarantined()) {
        warn("quarantined: %s frame %u %s (%u attempt(s)): %s",
             q.app.c_str(), q.frameIndex, q.policy.c_str(),
             q.attempts, q.error.c_str());
    }
    return kQuarantineExitCode;
}

/**
 * Handle the shared "--csv <path>" / "--json <path>" export
 * arguments; returns true when an export was written.
 */
inline bool
exportSweepResult(int argc, char **argv, const SweepResult &result)
{
    bool wrote = false;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag != "--csv" && flag != "--json")
            continue;
        if (i + 1 >= argc)
            fatal("%s requires a file path", flag.c_str());
        std::ofstream os(argv[i + 1]);
        if (!os) {
            std::cerr << "cannot write " << argv[i + 1] << "\n";
            continue;
        }
        if (flag == "--csv")
            result.writeCsv(os);
        else
            result.writeJson(os);
        std::cout << "wrote " << argv[i + 1] << "\n";
        wrote = true;
        ++i;
    }
    return wrote;
}

} // namespace gllc

#endif // GLLC_BENCH_BENCH_UTIL_HH
