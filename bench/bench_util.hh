/**
 * @file
 * Shared helpers for the figure-regeneration benchmark harnesses.
 *
 * Every binary in bench/ regenerates one table or figure of the
 * paper: it sweeps the 52-frame workload set under the relevant
 * policies and prints the same rows/series the paper plots.
 * Absolute values differ from the paper (the substrate is this
 * library's simulator, not the authors' testbed); EXPERIMENTS.md
 * compares the shapes.
 *
 * Environment knobs: GLLC_SCALE (default 4; 1 = paper-size machine),
 * GLLC_FRAMES (default all 52) and GLLC_THREADS (default: hardware
 * concurrency; 1 = serial).  The shared command-line surface —
 * "--csv <path>" / "--json <path>" exports, "--stats" metrics
 * snapshots, "--checkpoint <path>" and "--resume" — is parsed once
 * by BenchCli below; benches route their SweepConfig through
 * cli.apply() and exit through cli.finish().
 */

#ifndef GLLC_BENCH_BENCH_UTIL_HH
#define GLLC_BENCH_BENCH_UTIL_HH

#include <fstream>
#include <iostream>
#include <string>

#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/stats.hh"

namespace gllc
{

/**
 * Exit code when a sweep finished with quarantined cells: the
 * artifacts exist but are partial, which scripted pipelines must be
 * able to tell apart from both success (0) and a crash/fatal (1).
 * 75 is EX_TEMPFAIL in sysexits.h: a re-run may well succeed.
 */
constexpr int kQuarantineExitCode = 75;

/** Print the standard bench banner. */
inline void
benchBanner(const std::string &what, const SweepResult &result)
{
    std::cout << "=== " << what << " ===\n"
              << "LLC " << result.llcConfig().capacityBytes / 1024
              << " KB " << result.llcConfig().ways << "-way "
              << result.llcConfig().banks << "-bank, scale "
              << result.scale().linear << ", "
              << result.cells().size() << " (frame,policy) cells, "
              << result.threadsUsed() << " thread(s), "
              << fmt(result.wallSeconds(), 1) << " s\n";
    if (result.restoredCells() > 0)
        std::cout << result.restoredCells()
                  << " cell(s) restored from checkpoint\n";
    if (!result.quarantined().empty())
        std::cout << result.quarantined().size()
                  << " cell(s) QUARANTINED (partial results)\n";
    std::cout << '\n';
}

/**
 * The exit status a sweep bench must return: lists any quarantined
 * cells on stderr and maps them to kQuarantineExitCode so CI and
 * scripts cannot mistake partial artifacts for complete ones.
 */
inline int
benchExitCode(const SweepResult &result)
{
    if (result.quarantined().empty())
        return 0;
    for (const QuarantinedCell &q : result.quarantined()) {
        warn("quarantined: %s (%u attempt(s)): %s",
             q.key.toString().c_str(), q.attempts,
             q.error.c_str());
    }
    return kQuarantineExitCode;
}

/**
 * The one parser of the command-line surface every bench shares
 * (previously scattered over BenchObservability, exportSweepResult
 * and per-harness flag loops):
 *
 *   --stats              metrics registry on; snapshot (CSV) on
 *                        stdout when the bench exits
 *   --csv <path>         per-cell CSV through analysis/report
 *   --json <path>        per-cell JSON through analysis/report
 *   --checkpoint <path>  sweep checkpoint journal
 *   --resume             restore completed cells from the journal
 *
 * Unrelated arguments are ignored (benches may define their own).
 * Construct first thing in main, route the SweepConfig through
 * apply(), and return finish(result) from main:
 *
 *   BenchCli cli(argc, argv);
 *   const SweepResult r =
 *       cli.apply(SweepConfig().policies({...})).run();
 *   return cli.finish(r);
 */
class BenchCli
{
  public:
    BenchCli(int argc, char **argv) : argc_(argc), argv_(argv)
    {
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            if (flag == "--stats") {
                stats_ = true;
                setMetricsActive(true);
            } else if (flag == "--csv" || flag == "--json") {
                if (i + 1 >= argc)
                    fatal("%s requires a file path", flag.c_str());
                (flag == "--csv" ? csvPath_ : jsonPath_) =
                    argv[++i];
            }
        }
    }

    ~BenchCli()
    {
        if (!stats_)
            return;
        std::cout << "--- metrics snapshot ---\n";
        MetricsRegistry::instance().snapshot().writeCsv(std::cout);
    }

    BenchCli(const BenchCli &) = delete;
    BenchCli &operator=(const BenchCli &) = delete;

    /** Apply the sweep-engine flags (--checkpoint/--resume). */
    SweepConfig
    apply(SweepConfig cfg) const
    {
        cfg.cliArgs(argc_, argv_);
        return cfg;
    }

    /** Write any requested --csv/--json exports; true if written. */
    bool
    exportResult(const SweepResult &result) const
    {
        bool wrote = false;
        if (writeExport(csvPath_, result, false))
            wrote = true;
        if (writeExport(jsonPath_, result, true))
            wrote = true;
        return wrote;
    }

    /** Exports plus the quarantine-aware exit status for main. */
    int
    finish(const SweepResult &result) const
    {
        exportResult(result);
        return benchExitCode(result);
    }

    bool stats() const { return stats_; }
    const std::string &csvPath() const { return csvPath_; }
    const std::string &jsonPath() const { return jsonPath_; }

  private:
    static bool
    writeExport(const std::string &path, const SweepResult &result,
                bool json)
    {
        if (path.empty())
            return false;
        std::ofstream os(path);
        if (!os) {
            std::cerr << "cannot write " << path << "\n";
            return false;
        }
        if (json)
            result.writeJson(os);
        else
            result.writeCsv(os);
        std::cout << "wrote " << path << "\n";
        return true;
    }

    int argc_ = 0;
    char **argv_ = nullptr;
    bool stats_ = false;
    std::string csvPath_;
    std::string jsonPath_;
};

} // namespace gllc

#endif // GLLC_BENCH_BENCH_UTIL_HH
