/**
 * @file
 * Figure 4: stream-wise distribution of the LLC accesses.
 *
 * Paper result (average over 52 frames): render target ~40%,
 * texture sampler ~34%, Z ~10+%, HiZ ~7%, vertex ~4%, and ~5%
 * spread over stencil, display and other accesses.
 */

#include <array>
#include <iostream>
#include <map>

#include "bench/bench_util.hh"
#include "common/thread_pool.hh"
#include "workload/frame_set.hh"
#include "workload/trace_cache.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const RenderScale scale = scaleFromEnv();
    const auto frames = frameSetFromEnv();
    std::cout << "=== Figure 4: stream-wise LLC access distribution"
              << " (scale " << scale.linear << ") ===\n\n";

    // Per-frame stream counts, generated in parallel and merged in
    // frame-set order.
    struct FrameCounts
    {
        std::array<std::uint64_t, kNumStreams> counts{};
        std::uint64_t total = 0;
    };
    std::vector<FrameCounts> per_frame(frames.size());
    {
        ThreadPool pool(sweepThreads());
        pool.parallelFor(frames.size(), [&](std::size_t i) {
            const FrameTrace trace = cachedRenderFrame(
                *frames[i].app, frames[i].frameIndex, scale);
            per_frame[i].counts = trace.streamCounts();
            per_frame[i].total = trace.accesses.size();
        });
    }

    std::map<std::string, std::array<std::uint64_t, kNumStreams>>
        per_app;
    std::array<double, kNumStreams> mean_pct{};
    std::uint64_t nframes = 0;

    for (std::size_t i = 0; i < frames.size(); ++i) {
        auto &app_counts = per_app[frames[i].app->name];
        const double total =
            static_cast<double>(per_frame[i].total);
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            app_counts[s] += per_frame[i].counts[s];
            mean_pct[s] +=
                100.0 * static_cast<double>(per_frame[i].counts[s])
                / total;
        }
        ++nframes;
    }

    std::vector<std::string> header{"app"};
    for (std::size_t s = 0; s < kNumStreams; ++s)
        header.push_back(streamName(static_cast<StreamType>(s)));
    TablePrinter tp(header);

    for (const AppProfile &app : paperApps()) {
        const auto it = per_app.find(app.name);
        if (it == per_app.end())
            continue;
        std::uint64_t total = 0;
        for (const auto c : it->second)
            total += c;
        std::vector<std::string> row{app.name};
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            row.push_back(fmtPct(
                static_cast<double>(it->second[s])
                / static_cast<double>(total)));
        }
        tp.addRow(std::move(row));
    }

    std::vector<std::string> mean_row{"MEAN"};
    for (std::size_t s = 0; s < kNumStreams; ++s) {
        mean_row.push_back(
            fmt(mean_pct[s] / static_cast<double>(nframes), 1) + "%");
    }
    tp.addRow(std::move(mean_row));
    tp.print(std::cout);
    return 0;
}
