/**
 * @file
 * Figure 4: stream-wise distribution of the LLC accesses.
 *
 * Paper result (average over 52 frames): render target ~40%,
 * texture sampler ~34%, Z ~10+%, HiZ ~7%, vertex ~4%, and ~5%
 * spread over stencil, display and other accesses.
 */

#include <array>
#include <iostream>
#include <map>

#include "bench/bench_util.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main()
{
    const RenderScale scale = scaleFromEnv();
    std::cout << "=== Figure 4: stream-wise LLC access distribution"
              << " (scale " << scale.linear << ") ===\n\n";

    std::map<std::string, std::array<std::uint64_t, kNumStreams>>
        per_app;
    std::array<double, kNumStreams> mean_pct{};
    std::uint64_t frames = 0;

    for (const FrameSpec &spec : frameSetFromEnv()) {
        const FrameTrace trace =
            renderFrame(*spec.app, spec.frameIndex, scale);
        const auto counts = trace.streamCounts();
        auto &app_counts = per_app[spec.app->name];
        const double total =
            static_cast<double>(trace.accesses.size());
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            app_counts[s] += counts[s];
            mean_pct[s] += 100.0 * static_cast<double>(counts[s])
                / total;
        }
        ++frames;
    }

    std::vector<std::string> header{"app"};
    for (std::size_t s = 0; s < kNumStreams; ++s)
        header.push_back(streamName(static_cast<StreamType>(s)));
    TablePrinter tp(header);

    for (const AppProfile &app : paperApps()) {
        const auto it = per_app.find(app.name);
        if (it == per_app.end())
            continue;
        std::uint64_t total = 0;
        for (const auto c : it->second)
            total += c;
        std::vector<std::string> row{app.name};
        for (std::size_t s = 0; s < kNumStreams; ++s) {
            row.push_back(fmtPct(
                static_cast<double>(it->second[s])
                / static_cast<double>(total)));
        }
        tp.addRow(std::move(row));
    }

    std::vector<std::string> mean_row{"MEAN"};
    for (std::size_t s = 0; s < kNumStreams; ++s) {
        mean_row.push_back(
            fmt(mean_pct[s] / static_cast<double>(frames), 1) + "%");
    }
    tp.addRow(std::move(mean_row));
    tp.print(std::cout);
    return 0;
}
