/**
 * @file
 * Extension: display scan-out bandwidth contention.
 *
 * The paper's simulator does not model the display engine; in a
 * real system the scan-out of the front buffer steals a constant
 * slice of DRAM bandwidth (60 Hz x front-buffer size).  This
 * harness re-runs the Figure 15 comparison with that load enabled:
 * with less bandwidth headroom, frames become more memory-bound and
 * a policy that removes DRAM traffic (GSPC) is worth slightly more.
 */

#include "bench/perf_util.hh"
#include "common/env.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    GpuConfig gpu = GpuConfig::baseline();
    gpu.scanoutHz = 60.0;
    // Front buffer at the scaled resolution (4 B per pixel).
    const RenderScale scale = scaleFromEnv();
    gpu.scanoutBytes = 4ull * (1920 / scale.linear)
        * (1200 / scale.linear);
    runPerfFigure("Extension: 60 Hz scan-out contention", gpu,
                  {"DRRIP+UCD", "NRU+UCD", "GSPC+UCD"}, cli);
    return 0;
}
