/**
 * @file
 * Figure 8: percentage of the render target and texture fills that
 * two-bit DRRIP inserts with RRPV = 3 (predicted dead on arrival).
 *
 * Paper averages: ~36% of texture fills and ~25% of render target
 * fills get RRPV 3 — not aggressive enough for texture (Section 2.3)
 * and potentially harmful for the future-consumed render targets.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult sweep =
        cli.apply(SweepConfig()
            .policies({"DRRIP"}))
            .run();
    benchBanner("Figure 8: DRRIP fills at RRPV=3", sweep);

    std::map<std::string, FillHistogram> per_app;
    FillHistogram all;
    for (const SweepCell &cell : sweep.cells()) {
        per_app[cell.key.app].merge(cell.result.fills);
        all.merge(cell.result.fills);
    }

    TablePrinter tp({"app", "RT fills @RRPV3", "TEX fills @RRPV3"});
    auto pct = [](const FillHistogram &h, PolicyStream s) {
        return fmtPct(safeRatio(
            static_cast<double>(h.fillsAt(s, 3)),
            static_cast<double>(h.fills(s))));
    };
    for (const std::string &app : sweep.appOrder()) {
        const FillHistogram &h = per_app.at(app);
        tp.addRow({app, pct(h, PolicyStream::RenderTarget),
                   pct(h, PolicyStream::Texture)});
    }
    tp.addRow({"ALL", pct(all, PolicyStream::RenderTarget),
               pct(all, PolicyStream::Texture)});
    tp.print(std::cout);
    return cli.finish(sweep);
}
