/**
 * @file
 * Figure 5: LLC hit rates of the texture sampler, render target and
 * Z accesses under Belady's optimal, DRRIP and NRU.
 *
 * Paper averages: TEX 53.4 / 22.0 / 18.4 %, RT 59.8 / 50.1 / 41.5 %,
 * Z 77.1 / ~58 / ~58 % for Belady / DRRIP / NRU respectively.
 */

#include <iostream>

#include "bench/bench_util.hh"

using namespace gllc;

namespace
{

void
printPanel(const SweepResult &sweep, StreamType stream,
           const std::string &label)
{
    const auto hits = sweep.totalsByApp([stream](const RunResult &r) {
        return static_cast<double>(r.stats.of(stream).hits);
    });
    const auto accesses =
        sweep.totalsByApp([stream](const RunResult &r) {
            return static_cast<double>(r.stats.of(stream).accesses);
        });

    std::vector<std::string> header{"app"};
    for (const auto &p : sweep.policies())
        header.push_back(p);
    TablePrinter tp(header);

    std::vector<double> mean_rate(sweep.policies().size(), 0.0);
    std::size_t apps = 0;
    for (const std::string &app : sweep.appOrder()) {
        std::vector<std::string> row{app};
        for (std::size_t i = 0; i < sweep.policies().size(); ++i) {
            const std::string &p = sweep.policies()[i];
            const double rate = safeRatio(hits.at(app).at(p),
                                          accesses.at(app).at(p));
            mean_rate[i] += rate;
            row.push_back(fmtPct(rate));
        }
        tp.addRow(std::move(row));
        ++apps;
    }
    std::vector<std::string> mean_row{"MEAN"};
    for (double r : mean_rate)
        mean_row.push_back(fmtPct(r / static_cast<double>(apps)));
    tp.addRow(std::move(mean_row));

    std::cout << label << " hit rate\n";
    tp.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    const SweepResult result =
        cli.apply(SweepConfig()
            .policies({"Belady", "DRRIP", "NRU"}))
            .run();
    benchBanner("Figure 5: per-stream LLC hit rates", result);
    printPanel(result, StreamType::Texture, "texture sampler");
    printPanel(result, StreamType::RenderTarget, "render target");
    printPanel(result, StreamType::Z, "Z");
    return cli.finish(result);
}
