/**
 * @file
 * Figure 17: sensitivity of GSPC (and NRU) to the memory system and
 * GPU strength, on the 8 MB LLC.
 *
 *  - upper panel: dual-channel DDR3-1867 10-10-10 DRAM.
 *    Paper: NRU -7%, GSPC +7.1% (slightly below the +8.0% of the
 *    slower DDR3-1600 baseline).
 *  - lower panel: less aggressive GPU with 512 shader threads
 *    (64 cores) and 8 samplers.  Paper: NRU -5.3%, GSPC +5.9% —
 *    internal bottlenecks reduce memory sensitivity.
 */

#include "bench/perf_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    runPerfFigure("Figure 17 upper: DDR3-1867 10-10-10",
                  GpuConfig::fastDram(),
                  {"DRRIP+UCD", "NRU+UCD", "GSPC+UCD"}, cli);
    runPerfFigure("Figure 17 lower: 512-thread / 8-sampler GPU",
                  GpuConfig::lessAggressive(),
                  {"DRRIP+UCD", "NRU+UCD", "GSPC+UCD"}, cli);
    return 0;
}
