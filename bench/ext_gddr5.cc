/**
 * @file
 * Extension: a discrete-GPU GDDR5 memory system.
 *
 * Section 4 frames the large LLC as a bandwidth filter in front of
 * "the GDDRx DRAM" of a discrete GPU.  This harness runs the 8 MB
 * configuration against a 4-channel GDDR5-class memory system
 * (double the DDR3-1600 bandwidth, longer latencies and smaller 2 KB
 * rows), extending the Figure 17 memory-system axis to the discrete
 * GPU regime: more bandwidth absorbs miss volume, but the smaller
 * row buffers make the schedule more sensitive to the access
 * pattern, so the GSPC advantage need not shrink monotonically.
 */

#include "bench/perf_util.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    BenchCli cli(argc, argv);
    GpuConfig gpu = GpuConfig::baseline();
    gpu.dram = DramConfig::gddr5();
    runPerfFigure("Extension: GDDR5-class memory system", gpu,
                  {"DRRIP+UCD", "NRU+UCD", "GSPC+UCD"}, cli);
    return 0;
}
