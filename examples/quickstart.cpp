/**
 * @file
 * Quickstart: render one frame, manage the LLC with GSPC, and see
 * what it buys over the DRRIP baseline.
 *
 * This is the smallest end-to-end use of the library:
 *
 *   1. pick an application profile (Table 1 of the paper);
 *   2. render a frame through the DirectX-style pipeline model to
 *      get the LLC access trace;
 *   3. simulate the full GPU (render caches -> LLC -> DDR3) under
 *      two policies;
 *   4. compare LLC misses and frame time.
 */

#include <iostream>

#include "common/stats.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main()
{
    // 1. Workload: one captured frame of BioShock.
    const AppProfile &app = findApp("BioShock");
    const RenderScale scale = scaleFromEnv();

    // 2. Render the frame: the trace holds every LLC access the
    //    render caches emitted while drawing it.
    const FrameTrace trace = renderFrame(app, /*frame_index=*/0, scale);
    std::cout << "rendered " << trace.name << ": "
              << trace.accesses.size() << " LLC accesses, "
              << trace.work.pixelsShaded << " pixels shaded\n";

    // 3. Simulate the baseline GPU under DRRIP and under GSPC+UCD.
    const GpuConfig gpu = GpuConfig::baseline();
    const FrameSimResult drrip =
        simulateFrame(trace, policySpec("DRRIP"), gpu, scale);
    const FrameSimResult gspc =
        simulateFrame(trace, policySpec("GSPC+UCD"), gpu, scale);

    // 4. Report.
    std::cout << "DRRIP   : misses " << drrip.llcStats.totalMisses()
              << ", frame " << fmt(drrip.timing.frameCycles / 1e6, 2)
              << " Mcycles, " << fmt(drrip.timing.fps, 1) << " fps\n";
    std::cout << "GSPC+UCD: misses " << gspc.llcStats.totalMisses()
              << ", frame " << fmt(gspc.timing.frameCycles / 1e6, 2)
              << " Mcycles, " << fmt(gspc.timing.fps, 1) << " fps\n";
    std::cout << "miss savings: "
              << fmtPct(1.0
                        - static_cast<double>(gspc.llcStats.totalMisses())
                            / static_cast<double>(
                                drrip.llcStats.totalMisses()))
              << ", speedup: "
              << fmt(gspc.timing.fps / drrip.timing.fps, 3) << "x\n";
    return 0;
}
