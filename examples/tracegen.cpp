/**
 * @file
 * Example/tool: generate frame traces and cache them on disk.
 *
 * Usage: tracegen <output-dir> [app ...]
 *
 * Writes one .gltrc file per frame of the selected applications
 * (default: every Table 1 application) at the current GLLC_SCALE.
 * The files can be replayed with trace_replay or loaded via
 * readTraceFile() without paying trace-generation cost again.
 */

#include <iostream>

#include "trace/trace_io.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: tracegen <output-dir> [app ...]\n";
        return 1;
    }
    const std::string dir = argv[1];
    const RenderScale scale = scaleFromEnv();

    std::vector<const AppProfile *> apps;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i)
            apps.push_back(&findApp(argv[i]));
    } else {
        for (const AppProfile &a : paperApps())
            apps.push_back(&a);
    }

    for (const AppProfile *app : apps) {
        for (std::uint32_t f = 0; f < app->frames; ++f) {
            const FrameTrace trace = renderFrame(*app, f, scale);
            const std::string path = dir + "/" + app->name + "_f"
                + std::to_string(f) + ".gltrc";
            writeTraceFile(trace, path);
            std::cout << path << ": " << trace.accesses.size()
                      << " accesses\n";
        }
    }
    return 0;
}
