/**
 * @file
 * Example: explore the GSPC design space from the command line.
 *
 * Builds a GSPC variant from command-line knobs and compares it
 * against the paper's design point and DRRIP on a frame subset.
 *
 * Usage:
 *   ablation_explorer [t=8] [counter_bits=8] [sample_log2=6]
 *                     [bypass=0] [variant=gspc|tse|gspztc]
 *
 * e.g.  ablation_explorer 4 6 7 1 gspc
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "analysis/sweep.hh"
#include "common/stats.hh"
#include "core/gspc_family.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    GspcParams params;
    if (argc > 1)
        params.t = static_cast<std::uint32_t>(std::atoi(argv[1]));
    if (argc > 2)
        params.counterBits =
            static_cast<unsigned>(std::atoi(argv[2]));
    if (argc > 3)
        params.sampleLog2 =
            static_cast<unsigned>(std::atoi(argv[3]));
    if (argc > 4)
        params.bypassDeadFills = std::atoi(argv[4]) != 0;
    params.accBits = params.counterBits > 1 ? params.counterBits - 1
                                            : 1;

    GspcVariant variant = GspcVariant::Gspc;
    if (argc > 5) {
        const std::string v = argv[5];
        if (v == "tse")
            variant = GspcVariant::GspztcTse;
        else if (v == "gspztc")
            variant = GspcVariant::Gspztc;
    }

    std::cout << "candidate: t=" << params.t << " counters="
              << params.counterBits << "b sampling=1/"
              << (1u << params.sampleLog2) << " bypass="
              << (params.bypassDeadFills ? "on" : "off") << "\n\n";

    // The candidate enters the sweep through the registry-free
    // spec path, next to the two registry reference points.
    PolicySpec candidate;
    candidate.name = "candidate";
    candidate.baseName = "GSPC";
    candidate.factory = GspcFamilyPolicy::factory(variant, params);
    candidate.uncachedDisplay = true;

    const SweepResult sweep =
        SweepConfig()
            .policySpecs({policySpec("DRRIP"), policySpec("GSPC+UCD"),
                          candidate})
            .run();

    double drrip = 0, paper = 0, cand = 0;
    for (const SweepCell &cell : sweep.cells()) {
        const double misses = missMetric(cell.result);
        if (cell.key.policy == "DRRIP")
            drrip += misses;
        else if (cell.key.policy == "GSPC+UCD")
            paper += misses;
        else
            cand += misses;
    }

    TablePrinter tp({"policy", "misses vs DRRIP"});
    tp.addRow({"GSPC+UCD (paper design)", fmt(paper / drrip, 4)});
    tp.addRow({"candidate", fmt(cand / drrip, 4)});
    tp.print(std::cout);
    return 0;
}
