/**
 * @file
 * Example: frame-time bound breakdown per application.
 *
 * Shows where each title's frame time goes on the baseline GPU —
 * compute, sampler, LLC occupancy, DRAM schedule and exposed
 * latency — under DRRIP and GSPC, making visible *why* saving LLC
 * misses speeds rendering (Section 5.3's argument).
 */

#include <iostream>

#include "common/stats.hh"
#include "gpu/gpu_simulator.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    const RenderScale scale = scaleFromEnv();
    const GpuConfig gpu = GpuConfig::baseline();

    std::vector<const AppProfile *> apps;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            apps.push_back(&findApp(argv[i]));
    } else {
        for (const AppProfile &a : paperApps())
            apps.push_back(&a);
    }

    TablePrinter tp({"app", "policy", "compute", "sampler", "dram",
                     "exposed", "frame Mcyc", "fps"});
    for (const AppProfile *app : apps) {
        const FrameTrace trace = renderFrame(*app, 0, scale);
        for (const char *policy : {"DRRIP+UCD", "GSPC+UCD"}) {
            const FrameSimResult r =
                simulateFrame(trace, policySpec(policy), gpu, scale);
            const FrameTiming &t = r.timing;
            auto mc = [](double v) { return fmt(v / 1e6, 2); };
            tp.addRow({app->name, policy, mc(t.computeCycles),
                       mc(t.samplerCycles), mc(t.dramCycles),
                       mc(t.exposedCycles), mc(t.frameCycles),
                       fmt(t.fps, 0)});
        }
    }
    std::cout << "frame-time bounds in Mcycles (GPU core clock, "
              << "scale " << scale.linear << ")\n";
    tp.print(std::cout);
    return 0;
}
