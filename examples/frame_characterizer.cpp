/**
 * @file
 * Example: reuse-profile characterization of a rendered frame.
 *
 * Renders one frame of each requested application, replays it under
 * Belady's optimal, DRRIP and NRU, and prints the Section 2 style
 * characterization: stream mix, per-stream hit rates, inter- vs
 * intra-stream texture reuse, epoch death ratios.
 *
 * Usage: frame_characterizer [app ...]
 *   GLLC_SCALE=N to change the machine scale (default 4).
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "common/stats.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

void
characterizeApp(const AppProfile &app, const RenderScale &scale,
                const LlcConfig &llc)
{
    const FrameTrace trace = renderFrame(app, 0, scale);

    std::cout << "== " << app.name << " (" << app.width << "x"
              << app.height << " / scale " << scale.linear << ") ==\n";
    std::cout << "LLC accesses: " << trace.accesses.size()
              << ", distinct blocks: " << trace.distinctBlocks()
              << ", LLC blocks: "
              << llc.capacityBytes / kBlockBytes << "\n";

    // Stream mix (Figure 4).
    const auto counts = trace.streamCounts();
    std::cout << "stream mix:";
    for (std::size_t s = 0; s < kNumStreams; ++s) {
        const double pct = 100.0 * static_cast<double>(counts[s])
            / static_cast<double>(trace.accesses.size());
        std::cout << "  " << streamName(static_cast<StreamType>(s))
                  << " " << fmt(pct, 1) << "%";
    }
    std::cout << "\n";

    for (const std::string policy : {"Belady", "DRRIP", "NRU"}) {
        const RunResult r =
            runTrace(trace, policySpec(policy), llc);
        const auto &ch = r.characterization;
        std::cout << policy << ": misses "
                  << r.stats.totalMisses() << "  hitrates TEX "
                  << fmtPct(r.stats.hitRate(StreamType::Texture))
                  << " RT "
                  << fmtPct(r.stats.hitRate(StreamType::RenderTarget))
                  << " Z " << fmtPct(r.stats.hitRate(StreamType::Z))
                  << "\n";
        std::cout << "   tex hits inter/intra: " << ch.interTexHits
                  << "/" << ch.intraTexHits
                  << "  RT cons rate: "
                  << fmtPct(ch.rtConsumptionRate())
                  << "  epoch hits E0/E1/E2/E3+: "
                  << ch.texEpochHits[0] << "/" << ch.texEpochHits[1]
                  << "/" << ch.texEpochHits[2] << "/"
                  << ch.texEpochHits[3] << "\n";
        std::cout << "   tex death E0/E1/E2: "
                  << fmt(ch.texDeathRatio(0), 2) << "/"
                  << fmt(ch.texDeathRatio(1), 2) << "/"
                  << fmt(ch.texDeathRatio(2), 2)
                  << "  z death E0/E1/E2: "
                  << fmt(ch.zDeathRatio(0), 2) << "/"
                  << fmt(ch.zDeathRatio(1), 2) << "/"
                  << fmt(ch.zDeathRatio(2), 2) << "\n";
    }
    std::cout << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const RenderScale scale = scaleFromEnv();
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            characterizeApp(findApp(argv[i]), scale, llc);
    } else {
        for (const AppProfile &app : paperApps())
            characterizeApp(app, scale, llc);
    }
    return 0;
}
