/**
 * @file
 * Example/tool: replay cached traces under any set of policies.
 *
 * Usage: trace_replay <trace.gltrc> [policy ...]
 *
 * Loads a trace written by tracegen and prints per-policy miss
 * counts, per-stream hit rates and the characterization summary —
 * the offline-simulator workflow of Section 2 decoupled from trace
 * generation.
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "common/stats.hh"
#include "trace/trace_io.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::cerr << "usage: trace_replay <trace.gltrc> [policy ...]\n";
        return 1;
    }
    const FrameTrace trace = readTraceFile(argv[1]);

    std::vector<std::string> policies;
    if (argc > 2) {
        for (int i = 2; i < argc; ++i)
            policies.emplace_back(argv[i]);
    } else {
        policies = {"DRRIP", "GSPC+UCD", "Belady"};
    }

    const RenderScale scale = scaleFromEnv();
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    std::cout << trace.name << ": " << trace.accesses.size()
              << " accesses, " << trace.distinctBlocks()
              << " distinct blocks\n\n";

    TablePrinter tp({"policy", "misses", "TEX hit", "RT hit", "Z hit",
                     "RT->TEX cons"});
    for (const std::string &p : policies) {
        const RunResult r = runTrace(trace, policySpec(p), llc);
        tp.addRow({p, std::to_string(r.stats.totalMisses()),
                   fmtPct(r.stats.hitRate(StreamType::Texture)),
                   fmtPct(r.stats.hitRate(StreamType::RenderTarget)),
                   fmtPct(r.stats.hitRate(StreamType::Z)),
                   fmtPct(r.characterization.rtConsumptionRate())});
    }
    tp.print(std::cout);
    return 0;
}
