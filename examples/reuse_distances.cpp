/**
 * @file
 * Example: per-stream reuse-distance profile of a frame.
 *
 * Prints, for each graphics stream, what fraction of its reused LLC
 * accesses lie within the capture range of caches of increasing
 * size — quantifying why the small render caches miss the far-flung
 * reuse that only a multi-megabyte LLC (and a policy that retains
 * the right blocks) can exploit.
 *
 * Usage: reuse_distances [app]   (default AssnCreed)
 */

#include <iostream>

#include "analysis/reuse_distance.hh"
#include "common/stats.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    const AppProfile &app =
        findApp(argc > 1 ? argv[1] : "AssnCreed");
    const RenderScale scale = scaleFromEnv();
    const FrameTrace trace = renderFrame(app, 0, scale);

    std::cout << "reuse distances for " << trace.name << " ("
              << trace.accesses.size() << " LLC accesses)\n\n";

    const StreamReuseDistances dists =
        measureReuseDistances(trace.accesses);

    const std::uint64_t llc_blocks =
        (8ull << 20) / kBlockBytes / scale.pixelScale();

    TablePrinter tp({"stream", "accesses", "cold", "<1K blocks",
                     "<LLC (" + std::to_string(llc_blocks) + ")",
                     "<4x LLC"});
    for (std::size_t s = 0; s < kNumStreams; ++s) {
        const ReuseDistanceHistogram &h = dists[s];
        if (h.accesses() == 0)
            continue;
        tp.addRow({streamName(static_cast<StreamType>(s)),
                   std::to_string(h.accesses()),
                   fmtPct(static_cast<double>(h.cold)
                          / static_cast<double>(h.accesses())),
                   fmtPct(h.fractionBelow(1024)),
                   fmtPct(h.fractionBelow(llc_blocks)),
                   fmtPct(h.fractionBelow(4 * llc_blocks))});
    }
    tp.print(std::cout);
    std::cout << "\n(reused-access fractions; a distance below the "
                 "LLC block count is\n capturable by an LRU-managed "
                 "cache of that size)\n";
    return 0;
}
