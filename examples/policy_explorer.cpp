/**
 * @file
 * Example: compare LLC policies on any subset of the workloads.
 *
 * Usage: policy_explorer [policy ...]
 *   Default policies: NRU DRRIP GS-DRRIP GSPZTC GSPZTC+TSE GSPC
 *   GSPC+UCD Belady.  Environment: GLLC_SCALE, GLLC_FRAMES.
 *
 * Prints per-application LLC miss counts normalized to DRRIP, the
 * presentation used throughout the paper's evaluation.
 */

#include <iostream>

#include "analysis/sweep.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    std::vector<std::string> policies;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            policies.emplace_back(argv[i]);
        policies.push_back("DRRIP");
    } else {
        policies = {"NRU",        "DRRIP",     "GS-DRRIP",
                    "GSPZTC",     "GSPZTC+TSE", "GSPC",
                    "GSPC+UCD",   "Belady"};
    }

    SweepConfig config;
    config.policies(policies);
    std::cout << "LLC: " << config.llcConfig().capacityBytes / 1024
              << " KB, " << config.llcConfig().ways << "-way, "
              << config.llcConfig().banks << " banks (scale "
              << config.scale().linear << ")\n\n";
    const SweepResult result = config.run();
    result.printNormalizedTable(std::cout, "LLC misses", missMetric,
                                "DRRIP");
    return 0;
}
