/**
 * @file
 * Example: LLC capacity sweep.
 *
 * Sweeps the LLC capacity from 2 MB to 32 MB (scaled) and reports
 * each policy's misses normalized to DRRIP at that capacity —
 * showing how the GSPC advantage evolves with cache size (the
 * paper's 8 MB -> 16 MB observation, Figures 15/16).
 *
 * Usage: capacity_sweep [policy ...]   (default NRU GSPC Belady)
 */

#include <iostream>

#include "analysis/sweep.hh"
#include "common/stats.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    std::vector<std::string> policies{"DRRIP"};
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            policies.emplace_back(argv[i]);
    } else {
        policies.insert(policies.end(), {"NRU", "GSPC+UCD", "Belady"});
    }

    std::vector<std::string> header{"LLC (full-scale)"};
    for (const auto &p : policies) {
        if (p != "DRRIP")
            header.push_back(p);
    }
    TablePrinter tp(header);

    for (const std::uint64_t mb : {2, 4, 8, 16, 32}) {
        const SweepResult sweep = SweepConfig()
                                      .policies(policies)
                                      .llcBytes(mb << 20)
                                      .run();
        const auto means = sweep.meanNormalized(missMetric, "DRRIP");
        std::vector<std::string> row{std::to_string(mb) + " MB"};
        for (const auto &p : policies) {
            if (p != "DRRIP")
                row.push_back(fmt(means.at(p), 3));
        }
        tp.addRow(std::move(row));
    }

    std::cout << "mean LLC misses normalized to DRRIP at the same "
              << "capacity\n";
    tp.print(std::cout);
    return 0;
}
