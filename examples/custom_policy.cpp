/**
 * @file
 * Example: writing and evaluating a custom LLC policy.
 *
 * Implements "TexPin" — a deliberately naive stream-aware policy
 * that always inserts texture and render-target blocks at RRPV 0
 * and everything else SRRIP-style — then compares it against DRRIP
 * and GSPC on one frame.  It demonstrates the full extension
 * surface: ReplacementPolicy, the RRIP helper, per-stream state and
 * plugging a custom factory into the replay harness.
 *
 * (TexPin usually loses to GSPC: unconditional protection is
 * exactly the over-commitment the paper's probabilistic learning
 * avoids.  See docs/POLICIES.md.)
 */

#include <iostream>

#include "analysis/offline_sim.hh"
#include "cache/rrip.hh"
#include "common/stats.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

/** Always-protect-texture/RT insertion over 2-bit RRIP. */
class TexPinPolicy : public ReplacementPolicy
{
  public:
    TexPinPolicy()
        : rrip_(2)
    {
    }

    void
    configure(std::uint32_t sets, std::uint32_t ways) override
    {
        rrip_.configure(sets, ways);
    }

    std::uint32_t
    selectVictim(std::uint32_t set) override
    {
        return rrip_.selectVictim(set);
    }

    void
    onFill(std::uint32_t set, std::uint32_t way,
           const AccessInfo &info) override
    {
        const bool pinned =
            info.pstream() == PolicyStream::Texture
            || info.pstream() == PolicyStream::RenderTarget;
        rrip_.fill(set, way, pinned ? 0 : rrip_.distantRrpv(),
                   info.pstream());
    }

    void
    onHit(std::uint32_t set, std::uint32_t way,
          const AccessInfo &) override
    {
        rrip_.set(set, way, 0);
    }

    std::string name() const override { return "TexPin"; }

  private:
    RripState rrip_;
};

} // namespace

int
main(int argc, char **argv)
{
    const AppProfile &app =
        findApp(argc > 1 ? argv[1] : "BioShock");
    const RenderScale scale = scaleFromEnv();
    const FrameTrace trace = renderFrame(app, 0, scale);
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    // A custom policy plugs in as a PolicySpec with its own factory.
    PolicySpec texpin;
    texpin.name = "TexPin";
    texpin.factory = [] { return std::make_unique<TexPinPolicy>(); };

    std::cout << "custom policy on " << trace.name << "\n\n";
    TablePrinter tp({"policy", "misses", "TEX hit", "Z hit"});
    for (const PolicySpec &spec :
         {policySpec("DRRIP"), texpin, policySpec("GSPC+UCD")}) {
        const RunResult r = runTrace(trace, spec, llc);
        tp.addRow({spec.name,
                   std::to_string(r.stats.totalMisses()),
                   fmtPct(r.stats.hitRate(StreamType::Texture)),
                   fmtPct(r.stats.hitRate(StreamType::Z))});
    }
    tp.print(std::cout);
    return 0;
}
