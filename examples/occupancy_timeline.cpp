/**
 * @file
 * Example: LLC stream-occupancy timeline.
 *
 * Shows, across a frame's rendering phases, how many LLC blocks each
 * stream owns under different policies.  Makes Section 5.1's
 * occupancy argument visible: GSPZTC's unconditional render-target
 * protection inflates RT occupancy (squeezing Z), and GSPC's
 * PROD/CONS-driven insertion deflates it again.
 *
 * Usage: occupancy_timeline [app [policy]]
 */

#include <iostream>

#include "analysis/occupancy.hh"
#include "analysis/offline_sim.hh"
#include "common/stats.hh"
#include "workload/frame_set.hh"

using namespace gllc;

namespace
{

void
printTimeline(const FrameTrace &trace, const std::string &policy,
              const LlcConfig &llc)
{
    const auto samples =
        trackOccupancy(trace, policySpec(policy), llc, 8);

    std::cout << policy << ":\n";
    TablePrinter tp({"progress", "RT", "TEX", "Z", "VTX+HiZ+STC",
                     "DISP", "total"});
    for (const OccupancySample &s : samples) {
        const auto at = [&s](StreamType t) {
            return s.blocks[static_cast<std::size_t>(t)];
        };
        const double progress = static_cast<double>(s.accessIndex)
            / static_cast<double>(trace.accesses.size());
        tp.addRow({fmtPct(progress, 0),
                   std::to_string(at(StreamType::RenderTarget)),
                   std::to_string(at(StreamType::Texture)),
                   std::to_string(at(StreamType::Z)),
                   std::to_string(at(StreamType::Vertex)
                                  + at(StreamType::HiZ)
                                  + at(StreamType::Stencil)),
                   std::to_string(at(StreamType::Display)),
                   std::to_string(s.total())});
    }
    tp.print(std::cout);
    std::cout << '\n';
}

} // namespace

int
main(int argc, char **argv)
{
    const AppProfile &app =
        findApp(argc > 1 ? argv[1] : "AssnCreed");
    const RenderScale scale = scaleFromEnv();
    const FrameTrace trace = renderFrame(app, 0, scale);
    const LlcConfig llc =
        scaledLlcConfig(8ull << 20, scale.pixelScale());

    std::cout << "LLC block occupancy by owning stream, "
              << trace.name << " ("
              << llc.capacityBytes / kBlockBytes << " blocks)\n\n";

    if (argc > 2) {
        printTimeline(trace, argv[2], llc);
    } else {
        for (const char *p : {"DRRIP", "GSPZTC", "GSPC+UCD"})
            printTimeline(trace, p, llc);
    }
    return 0;
}
