/**
 * @file
 * Example: LRU miss-ratio curves per application.
 *
 * Places the paper's 8 MB and 16 MB LLC design points (scaled) on
 * each workload's Mattson curve: how much of the miss traffic is
 * capacity-fixable at all, and how much only a smarter policy (or
 * Belady) can recover.
 */

#include <iostream>

#include "analysis/miss_curve.hh"
#include "common/stats.hh"
#include "workload/frame_set.hh"

using namespace gllc;

int
main(int argc, char **argv)
{
    const RenderScale scale = scaleFromEnv();
    const std::uint64_t llc8 =
        (8ull << 20) / kBlockBytes / scale.pixelScale();

    std::vector<const AppProfile *> apps;
    if (argc > 1) {
        for (int i = 1; i < argc; ++i)
            apps.push_back(&findApp(argv[i]));
    } else {
        for (const AppProfile &a : paperApps())
            apps.push_back(&a);
    }

    TablePrinter tp({"app", "1/4 LLC", "1/2 LLC", "8MB LLC",
                     "16MB LLC", "4x LLC"});
    for (const AppProfile *app : apps) {
        const FrameTrace trace = renderFrame(*app, 0, scale);
        const ReuseDistanceHistogram unified = unifyHistograms(
            measureReuseDistances(trace.accesses));
        tp.addRow({app->name,
                   fmtPct(lruMissRatioAt(unified, llc8 / 4)),
                   fmtPct(lruMissRatioAt(unified, llc8 / 2)),
                   fmtPct(lruMissRatioAt(unified, llc8)),
                   fmtPct(lruMissRatioAt(unified, llc8 * 2)),
                   fmtPct(lruMissRatioAt(unified, llc8 * 4))});
    }
    std::cout << "idealized (fully associative) LRU miss ratios at "
              << "scaled capacities\n";
    tp.print(std::cout);
    return 0;
}
