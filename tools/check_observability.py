#!/usr/bin/env python3
"""Schema validator for the observability artifacts gllc exports.

Validates the two files an instrumented run writes:

  * the metrics snapshot (GLLC_STATS_JSON / BenchObservability):
    {"schema": "gllc-stats-v1", "metrics": [...]} where every record
    carries a dotted name, a known type, and the value shape of that
    type (counters/gauges a scalar "value", histograms a "total" plus
    [bucket, count] pairs summing to it)
  * the timeline trace (GLLC_TRACE_OUT): Chrome trace-event JSON of
    complete ("X") spans with non-negative timestamps/durations and
    pid/tid fields, i.e. exactly what Perfetto / chrome://tracing
    loads

Usage:

    python3 tools/check_observability.py --stats stats.json \
        --trace trace.json [--expect-cells N]

Any subset of the flags may be given; --expect-cells asserts the
trace holds exactly N "cell" spans (one per (frame, policy) pair of
the sweep that produced it).  Exits 0 when every given file
validates, 1 with a report otherwise.
"""

import argparse
import json
import sys

STATS_SCHEMA = "gllc-stats-v1"
METRIC_TYPES = {"counter", "gauge", "histogram"}


def fail(errors, message):
    errors.append(message)


def check_stats(path, errors):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        return fail(errors, f"{path}: top level is not an object")
    if doc.get("schema") != STATS_SCHEMA:
        fail(errors,
             f"{path}: schema {doc.get('schema')!r}, "
             f"expected {STATS_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return fail(errors, f"{path}: \"metrics\" is not an array")

    previous = None
    for i, m in enumerate(metrics):
        where = f"{path}: metrics[{i}]"
        if not isinstance(m, dict):
            fail(errors, f"{where}: not an object")
            continue
        name = m.get("name")
        if not isinstance(name, str) or not name:
            fail(errors, f"{where}: missing name")
            continue
        if previous is not None and not previous < name:
            fail(errors,
                 f"{where}: {name!r} out of order after {previous!r} "
                 "(export must be name-sorted)")
        previous = name
        mtype = m.get("type")
        if mtype not in METRIC_TYPES:
            fail(errors, f"{where} ({name}): bad type {mtype!r}")
            continue
        if mtype == "counter":
            if not isinstance(m.get("value"), int) or m["value"] < 0:
                fail(errors, f"{where} ({name}): counter needs a "
                     "non-negative integer value")
        elif mtype == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                fail(errors, f"{where} ({name}): gauge needs a "
                     "numeric value")
        else:
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                fail(errors, f"{where} ({name}): histogram needs "
                     "non-empty buckets")
                continue
            total = 0
            for b in buckets:
                if (not isinstance(b, list) or len(b) != 2
                        or not isinstance(b[0], int)
                        or not isinstance(b[1], int) or b[1] < 0):
                    fail(errors, f"{where} ({name}): bucket {b!r} is "
                         "not [value, count]")
                    break
                total += b[1]
            else:
                if m.get("total") != total:
                    fail(errors, f"{where} ({name}): total "
                         f"{m.get('total')} != bucket sum {total}")
    return None


def check_trace(path, errors, expect_cells=None):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        return fail(errors, f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(errors, f"{path}: \"traceEvents\" is not an array")
    if not events:
        fail(errors, f"{path}: no spans recorded")

    cells = 0
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(errors, f"{where}: not an object")
            continue
        if e.get("ph") != "X":
            fail(errors, f"{where}: ph {e.get('ph')!r}, expected "
                 "complete spans (\"X\")")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(errors, f"{where}: missing name")
        for field in ("ts", "dur"):
            value = e.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                fail(errors,
                     f"{where}: bad {field} {value!r}")
        if e.get("pid") != 1:
            fail(errors, f"{where}: pid {e.get('pid')!r}, expected 1")
        if not isinstance(e.get("tid"), int) or e["tid"] < 0:
            fail(errors, f"{where}: bad tid {e.get('tid')!r}")
        if e.get("cat") == "cell":
            cells += 1
            args = e.get("args", {})
            for key in ("app", "frame", "policy"):
                if not isinstance(args.get(key), str):
                    fail(errors, f"{where}: cell span missing "
                         f"args.{key}")

    if expect_cells is not None and cells != expect_cells:
        fail(errors,
             f"{path}: {cells} cell spans, expected {expect_cells}")
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats", help="metrics snapshot JSON")
    parser.add_argument("--trace", help="trace-event JSON")
    parser.add_argument("--expect-cells", type=int, default=None,
                        help="exact number of cell spans the trace "
                        "must hold")
    args = parser.parse_args()
    if not args.stats and not args.trace:
        parser.error("give at least one of --stats / --trace")

    errors = []
    if args.stats:
        check_stats(args.stats, errors)
    if args.trace:
        check_trace(args.trace, errors, args.expect_cells)

    for error in errors:
        print(error)
    if errors:
        print(f"check_observability: {len(errors)} finding(s)")
        return 1
    checked = " and ".join(
        p for p in (args.stats, args.trace) if p)
    print(f"check_observability: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
