#!/usr/bin/env python3
"""Schema validator for the observability artifacts gllc exports.

Validates the files an instrumented run or a telemetry-enabled gllcd
writes:

  * the metrics snapshot (GLLC_STATS_JSON / BenchObservability):
    {"schema": "gllc-stats-v1", "metrics": [...]} where every record
    carries a dotted name, a known type, and the value shape of that
    type (counters/gauges a scalar "value", histograms a "total" plus
    [bucket, count] pairs summing to it)
  * the timeline trace (GLLC_TRACE_OUT): Chrome trace-event JSON of
    complete ("X") spans with non-negative timestamps/durations and
    pid/tid fields, i.e. exactly what Perfetto / chrome://tracing
    loads
  * the service event log (gllcd --events): JSON lines of schema
    "gllcd-events-v1", each with a wall-clock ts_ms and a known
    event type carrying that type's required fields
  * a Prometheus text exposition scraped from gllcd's /metrics:
    format 0.0.4 with TYPE comments, monotone cumulative histogram
    buckets, and _count equal to the +Inf bucket
  * a merged per-job timeline (gllcd --trace-dir): daemon job spans
    plus worker cell spans stitched onto one clock, spanning >= 2
    processes

Usage:

    python3 tools/check_observability.py --stats stats.json \
        --trace trace.json [--expect-cells N] \
        --events events.jsonl [--result report.json] \
        --prom metrics.txt [--expect-series NAME ...] \
        --job-trace job-1.json [--expect-worker-pids N]

Any subset of the flags may be given; --expect-cells asserts the
trace holds exactly N "cell" spans (one per (frame, policy) pair of
the sweep that produced it); --result cross-checks the event log's
cell_quarantined events against the quarantined array of a sweep
report; --expect-series asserts the exposition carries a series
(repeatable); --expect-worker-pids asserts cell spans in the merged
job trace come from at least N distinct worker processes.  Exits 0
when every given file validates, 1 with a report otherwise.
"""

import argparse
import json
import sys

STATS_SCHEMA = "gllc-stats-v1"
EVENTS_SCHEMA = "gllcd-events-v1"
METRIC_TYPES = {"counter", "gauge", "histogram"}

# Per-event required fields beyond the envelope (schema, ts_ms,
# event).  Kept in lockstep with ServiceEventLog emit sites.
EVENT_FIELDS = {
    "daemon_started": {"pid", "workers"},
    "daemon_stopping": {"jobs_completed"},
    "job_accepted": {"job", "tenant", "priority", "frames",
                     "policies"},
    "job_cache_hit": {"job", "tenant", "priority"},
    "job_joined": {"tenant", "priority"},
    "job_started": {"job", "tenant", "priority", "queue_wait_ms"},
    "job_completed": {"job", "tenant", "cells", "quarantined",
                      "exec_ms", "e2e_ms"},
    "job_failed": {"job", "tenant", "error"},
    "cell_retry": {"job", "app", "frame", "policy", "attempts",
                   "error"},
    "cell_quarantined": {"job", "app", "frame", "policy",
                         "attempts", "error"},
}


def fail(errors, message):
    errors.append(message)


def check_stats(path, errors):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        return fail(errors, f"{path}: top level is not an object")
    if doc.get("schema") != STATS_SCHEMA:
        fail(errors,
             f"{path}: schema {doc.get('schema')!r}, "
             f"expected {STATS_SCHEMA!r}")
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        return fail(errors, f"{path}: \"metrics\" is not an array")

    previous = None
    for i, m in enumerate(metrics):
        where = f"{path}: metrics[{i}]"
        if not isinstance(m, dict):
            fail(errors, f"{where}: not an object")
            continue
        name = m.get("name")
        if not isinstance(name, str) or not name:
            fail(errors, f"{where}: missing name")
            continue
        if previous is not None and not previous < name:
            fail(errors,
                 f"{where}: {name!r} out of order after {previous!r} "
                 "(export must be name-sorted)")
        previous = name
        mtype = m.get("type")
        if mtype not in METRIC_TYPES:
            fail(errors, f"{where} ({name}): bad type {mtype!r}")
            continue
        if mtype == "counter":
            if not isinstance(m.get("value"), int) or m["value"] < 0:
                fail(errors, f"{where} ({name}): counter needs a "
                     "non-negative integer value")
        elif mtype == "gauge":
            if not isinstance(m.get("value"), (int, float)):
                fail(errors, f"{where} ({name}): gauge needs a "
                     "numeric value")
        else:
            buckets = m.get("buckets")
            if not isinstance(buckets, list) or not buckets:
                fail(errors, f"{where} ({name}): histogram needs "
                     "non-empty buckets")
                continue
            total = 0
            for b in buckets:
                if (not isinstance(b, list) or len(b) != 2
                        or not isinstance(b[0], int)
                        or not isinstance(b[1], int) or b[1] < 0):
                    fail(errors, f"{where} ({name}): bucket {b!r} is "
                         "not [value, count]")
                    break
                total += b[1]
            else:
                if m.get("total") != total:
                    fail(errors, f"{where} ({name}): total "
                         f"{m.get('total')} != bucket sum {total}")
    return None


def check_trace(path, errors, expect_cells=None):
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        return fail(errors, f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return fail(errors, f"{path}: \"traceEvents\" is not an array")
    if not events:
        fail(errors, f"{path}: no spans recorded")

    cells = 0
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict):
            fail(errors, f"{where}: not an object")
            continue
        if e.get("ph") != "X":
            fail(errors, f"{where}: ph {e.get('ph')!r}, expected "
                 "complete spans (\"X\")")
        if not isinstance(e.get("name"), str) or not e["name"]:
            fail(errors, f"{where}: missing name")
        for field in ("ts", "dur"):
            value = e.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                fail(errors,
                     f"{where}: bad {field} {value!r}")
        if e.get("pid") != 1:
            fail(errors, f"{where}: pid {e.get('pid')!r}, expected 1")
        if not isinstance(e.get("tid"), int) or e["tid"] < 0:
            fail(errors, f"{where}: bad tid {e.get('tid')!r}")
        if e.get("cat") == "cell":
            cells += 1
            args = e.get("args", {})
            for key in ("app", "frame", "policy"):
                if not isinstance(args.get(key), str):
                    fail(errors, f"{where}: cell span missing "
                         f"args.{key}")

    if expect_cells is not None and cells != expect_cells:
        fail(errors,
             f"{path}: {cells} cell spans, expected {expect_cells}")
    return None


def check_events(path, errors, result_path=None):
    """Validate a gllcd-events-v1 JSON-lines log; cross-check its
    cell_quarantined events against a sweep report's quarantined
    array when one is given."""
    quarantined = set()
    with open(path, encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                event = json.loads(line)
            except json.JSONDecodeError as exc:
                fail(errors, f"{where}: not JSON ({exc})")
                continue
            if not isinstance(event, dict):
                fail(errors, f"{where}: not an object")
                continue
            if event.get("schema") != EVENTS_SCHEMA:
                fail(errors,
                     f"{where}: schema {event.get('schema')!r}, "
                     f"expected {EVENTS_SCHEMA!r}")
            ts = event.get("ts_ms")
            if not isinstance(ts, int) or ts <= 0:
                fail(errors, f"{where}: bad ts_ms {ts!r}")
            etype = event.get("event")
            if etype not in EVENT_FIELDS:
                fail(errors, f"{where}: unknown event {etype!r}")
                continue
            missing = EVENT_FIELDS[etype] - set(event)
            if missing:
                fail(errors, f"{where}: {etype} missing "
                     f"{sorted(missing)}")
            if etype == "cell_quarantined" and not missing:
                quarantined.add((event["app"], event["frame"],
                                 event["policy"]))

    if result_path is None:
        return
    with open(result_path, encoding="utf-8") as handle:
        report = json.load(handle)
    reported = set()
    for q in report.get("quarantined", []):
        reported.add((q.get("app"), q.get("frame"),
                      q.get("policy")))
    if quarantined != reported:
        fail(errors,
             f"{path}: cell_quarantined events {sorted(quarantined)} "
             f"!= {result_path} quarantined {sorted(reported)}")


def check_prom(path, errors, expect_series=()):
    """Validate a Prometheus text exposition (format 0.0.4)."""
    typed = {}          # series base name -> declared type
    seen_series = set()  # every sample name observed
    buckets = {}        # histogram name -> [(le, cumulative count)]
    counts = {}         # histogram name -> _count value
    with open(path, encoding="utf-8") as handle:
        lines = handle.read().splitlines()

    for lineno, line in enumerate(lines, 1):
        where = f"{path}:{lineno}"
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                        "counter", "gauge", "histogram"):
                    fail(errors, f"{where}: malformed TYPE line")
                else:
                    typed[parts[2]] = parts[3]
            continue
        # A sample: name[{labels}] value
        head, _, value = line.rpartition(" ")
        if not head:
            fail(errors, f"{where}: not a sample line")
            continue
        try:
            float(value)
        except ValueError:
            fail(errors, f"{where}: non-numeric value {value!r}")
            continue
        name, _, labels = head.partition("{")
        seen_series.add(name)
        if name.endswith("_bucket"):
            base = name[:-len("_bucket")]
            le = None
            for item in labels.rstrip("}").split(","):
                key, _, raw = item.partition("=")
                if key == "le":
                    le = raw.strip('"')
            if le is None:
                fail(errors, f"{where}: bucket without le label")
                continue
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.setdefault(base, []).append(
                (bound, float(value)))
        elif name.endswith("_count"):
            counts[name[:-len("_count")]] = float(value)

    for base, series in sorted(buckets.items()):
        if typed.get(base) != "histogram":
            fail(errors, f"{path}: {base} has buckets but no "
                 "histogram TYPE line")
        prev_bound, prev_count = None, None
        for bound, count in series:
            if prev_bound is not None and (
                    bound <= prev_bound or count < prev_count):
                fail(errors, f"{path}: {base} buckets not "
                     "cumulative/monotone at le="
                     f"{bound}")
            prev_bound, prev_count = bound, count
        if not series or series[-1][0] != float("inf"):
            fail(errors, f"{path}: {base} missing +Inf bucket")
        elif base in counts and counts[base] != series[-1][1]:
            fail(errors, f"{path}: {base}_count {counts[base]} != "
                 f"+Inf bucket {series[-1][1]}")

    for wanted in expect_series:
        if wanted not in seen_series:
            fail(errors,
                 f"{path}: expected series {wanted!r} not exposed")


def check_job_trace(path, errors, expect_worker_pids=None):
    """Validate a merged per-job timeline: daemon job spans plus
    worker cell spans, all on one clock, from >= 2 processes."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if not isinstance(doc, dict):
        return fail(errors, f"{path}: top level is not an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return fail(errors, f"{path}: no spans recorded")

    job_pids = set()
    cell_pids = set()
    for i, e in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(e, dict) or e.get("ph") != "X":
            fail(errors, f"{where}: not a complete (\"X\") span")
            continue
        for field in ("ts", "dur"):
            if not isinstance(e.get(field), (int, float)):
                fail(errors, f"{where}: bad {field}")
        pid = e.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            fail(errors, f"{where}: bad pid {pid!r}")
            continue
        if e.get("cat") == "job":
            job_pids.add(pid)
            if not isinstance(e.get("args", {}).get("trace"), str):
                fail(errors, f"{where}: job span missing args.trace")
        elif e.get("cat") == "cell":
            cell_pids.add(pid)

    if not job_pids:
        fail(errors, f"{path}: no daemon job span")
    if expect_worker_pids is not None:
        workers = cell_pids - job_pids
        if len(workers) < expect_worker_pids:
            fail(errors,
                 f"{path}: cell spans from {len(workers)} worker "
                 f"process(es), expected >= {expect_worker_pids}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stats", help="metrics snapshot JSON")
    parser.add_argument("--trace", help="trace-event JSON")
    parser.add_argument("--expect-cells", type=int, default=None,
                        help="exact number of cell spans the trace "
                        "must hold")
    parser.add_argument("--events",
                        help="gllcd-events-v1 JSON-lines log")
    parser.add_argument("--result",
                        help="sweep report JSON to cross-check "
                        "quarantine events against (needs --events)")
    parser.add_argument("--prom",
                        help="Prometheus text exposition scrape")
    parser.add_argument("--expect-series", action="append",
                        default=[],
                        help="series the exposition must carry "
                        "(repeatable)")
    parser.add_argument("--job-trace",
                        help="merged per-job timeline JSON")
    parser.add_argument("--expect-worker-pids", type=int,
                        default=None,
                        help="minimum distinct worker pids with "
                        "cell spans in the job trace")
    args = parser.parse_args()
    given = (args.stats, args.trace, args.events, args.prom,
             args.job_trace)
    if not any(given):
        parser.error("give at least one of --stats / --trace / "
                     "--events / --prom / --job-trace")
    if args.result and not args.events:
        parser.error("--result needs --events")

    errors = []
    if args.stats:
        check_stats(args.stats, errors)
    if args.trace:
        check_trace(args.trace, errors, args.expect_cells)
    if args.events:
        check_events(args.events, errors, args.result)
    if args.prom:
        check_prom(args.prom, errors, args.expect_series)
    if args.job_trace:
        check_job_trace(args.job_trace, errors,
                        args.expect_worker_pids)

    for error in errors:
        print(error)
    if errors:
        print(f"check_observability: {len(errors)} finding(s)")
        return 1
    checked = " and ".join(p for p in given if p)
    print(f"check_observability: OK ({checked})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
