/**
 * gllcd: the sweep service daemon (and, via --worker, the worker
 * subprocess it forks).
 *
 * Usage:
 *   gllcd --socket /run/gllcd.sock [--port N] [--workers N]
 *         [--store DIR] [--print-port]
 *   gllcd --worker            # internal: cell worker on stdin/stdout
 *
 * Serves sweep jobs per src/service/protocol.hh until SIGINT or
 * SIGTERM.  --port 0 binds an ephemeral loopback port; --print-port
 * writes the bound port to stdout (scripts parse it).  --store
 * enables the content-addressed result cache.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "service/daemon.hh"
#include "service/worker.hh"

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gllc;

    DaemonOptions options;
    bool print_port = false;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--worker")
            return runSweepWorker();
        if (flag == "--print-port") {
            print_port = true;
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", flag.c_str());
        const std::string value = argv[++i];
        if (flag == "--socket")
            options.socketPath = value;
        else if (flag == "--port")
            options.tcpPort = std::atoi(value.c_str());
        else if (flag == "--workers")
            options.workers = static_cast<unsigned>(
                std::atoi(value.c_str()));
        else if (flag == "--store")
            options.storeDir = value;
        else
            fatal("unknown flag %s", flag.c_str());
    }

    SweepDaemon daemon(std::move(options));
    Result<Unit> started = daemon.start();
    if (!started.ok())
        fatal("gllcd: %s", started.error().toString().c_str());

    if (print_port && daemon.tcpPort() >= 0) {
        std::cout << daemon.tcpPort() << std::endl;
    }
    if (!daemon.socketPath().empty())
        note("gllcd: serving on %s", daemon.socketPath().c_str());
    if (daemon.tcpPort() >= 0)
        note("gllcd: serving on localhost:%d", daemon.tcpPort());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));

    note("gllcd: shutting down");
    daemon.stop();
    return 0;
}
