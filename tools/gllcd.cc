/**
 * gllcd: the sweep service daemon (and, via --worker, the worker
 * subprocess it forks).
 *
 * Usage:
 *   gllcd --socket /run/gllcd.sock [--port N] [--workers N]
 *         [--store DIR] [--print-port]
 *         [--metrics-port N] [--trace-dir DIR] [--events PATH]
 *         [--max-queue N] [--tenant-quota N]
 *         [--conn-timeout-ms N] [--max-conns N]
 *         [--journal PATH] [--recover]
 *   gllcd --worker            # internal: cell worker on stdin/stdout
 *
 * Serves sweep jobs per src/service/protocol.hh until SIGINT or
 * SIGTERM.  --port 0 binds an ephemeral loopback port; --print-port
 * writes each bound loopback port to stdout, one per line (the TCP
 * service port first if any, then the metrics port if any), for
 * scripts to parse.  --store enables the content-addressed result
 * cache.
 *
 * Telemetry plane:
 *   --metrics-port N   loopback HTTP GET /metrics (Prometheus text
 *                      0.0.4) and /status (StatusV2 JSON); 0 binds
 *                      an ephemeral port.  Implies live metrics
 *                      collection.
 *   --trace-dir DIR    merged per-job Perfetto timelines
 *                      (job-<id>.json) stitched from daemon and
 *                      worker-subprocess spans.
 *   --events PATH      structured JSON-lines event log
 *                      ("gllcd-events-v1").
 *
 * Overload and recovery plane:
 *   --max-queue N        queue depth cap; over-limit submits get a
 *                        typed shed frame (0 = unbounded).
 *   --tenant-quota N     per-tenant in-queue cap (0 = unlimited).
 *   --conn-timeout-ms N  deadline on every client read/write;
 *                        stalled peers are disconnected (0 = none).
 *   --max-conns N        concurrent-connection cap (0 = unlimited).
 *   --journal PATH       durable job journal (WAL): accepted jobs
 *                        are fsync'd before they queue.
 *   --recover            replay the journal at startup, re-queuing
 *                        unfinished jobs in acceptance order.
 *
 * A SIGTERM'd daemon flushes GLLC_STATS_JSON / GLLC_TRACE_OUT
 * explicitly after stop(), so terminated daemons still leave valid
 * observability artifacts.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/trace_event.hh"
#include "service/daemon.hh"
#include "service/worker.hh"

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gllc;

    DaemonOptions options;
    bool print_port = false;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--worker")
            return runSweepWorker();
        if (flag == "--print-port") {
            print_port = true;
            continue;
        }
        if (flag == "--recover") {
            options.recover = true;
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", flag.c_str());
        const std::string value = argv[++i];
        if (flag == "--socket")
            options.socketPath = value;
        else if (flag == "--port")
            options.tcpPort = std::atoi(value.c_str());
        else if (flag == "--workers")
            options.workers = static_cast<unsigned>(
                std::atoi(value.c_str()));
        else if (flag == "--store")
            options.storeDir = value;
        else if (flag == "--metrics-port")
            options.metricsPort = std::atoi(value.c_str());
        else if (flag == "--trace-dir")
            options.traceDir = value;
        else if (flag == "--events")
            options.eventLogPath = value;
        else if (flag == "--max-queue")
            options.maxQueue = static_cast<std::size_t>(
                std::atol(value.c_str()));
        else if (flag == "--tenant-quota")
            options.tenantQuota = static_cast<std::size_t>(
                std::atol(value.c_str()));
        else if (flag == "--conn-timeout-ms")
            options.connTimeoutMs = std::atoi(value.c_str());
        else if (flag == "--max-conns")
            options.maxConns = static_cast<std::size_t>(
                std::atol(value.c_str()));
        else if (flag == "--journal")
            options.journalPath = value;
        else
            fatal("unknown flag %s", flag.c_str());
    }

    // The exposition listener and the per-job timelines are only as
    // live as the registries behind them.
    if (options.metricsPort >= 0)
        setMetricsActive(true);
    if (!options.traceDir.empty())
        setTraceEventsActive(true);

    SweepDaemon daemon(std::move(options));
    Result<Unit> started = daemon.start();
    if (!started.ok())
        fatal("gllcd: %s", started.error().toString().c_str());

    if (print_port) {
        if (daemon.tcpPort() >= 0)
            std::cout << daemon.tcpPort() << std::endl;
        if (daemon.metricsPort() >= 0)
            std::cout << daemon.metricsPort() << std::endl;
    }
    if (!daemon.socketPath().empty())
        note("gllcd: serving on %s", daemon.socketPath().c_str());
    if (daemon.tcpPort() >= 0)
        note("gllcd: serving on localhost:%d", daemon.tcpPort());
    if (daemon.metricsPort() >= 0)
        note("gllcd: metrics on localhost:%d/metrics",
             daemon.metricsPort());

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!g_stop.load())
        std::this_thread::sleep_for(
            std::chrono::milliseconds(50));

    note("gllcd: shutting down");
    daemon.stop();
    // Belt and braces for SIGTERM shutdowns: write the configured
    // stats/trace artifacts now, while everything is joined, rather
    // than trusting exit handlers.
    flushConfiguredStatsJson();
    flushConfiguredTraceJson();
    return 0;
}
