/**
 * gllc-top: live terminal status for a running gllcd.
 *
 * Usage:
 *   gllc-top --socket /run/gllcd.sock [--interval-ms N] [--once]
 *   gllc-top --port N            [--interval-ms N] [--once]
 *
 * Polls the daemon's StatusV2 document over the framed protocol and
 * renders queue depths per priority class, worker health, cache hit
 * rate, and rolling p50/p95 job latency.  --once prints a single
 * snapshot without clearing the screen (scripts, tests); otherwise
 * the screen repaints every --interval-ms (default 1000) until
 * interrupted.  A daemon restart mid-watch is survived by
 * reconnecting on the next poll.
 */

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/json.hh"
#include "common/logging.hh"
#include "service/client.hh"

namespace
{

std::atomic<bool> g_stop{false};

void
onSignal(int)
{
    g_stop.store(true);
}

/** A number member of @p node, or @p fallback when absent. */
double
numberOr(const gllc::JsonValue *node, const char *key,
         double fallback)
{
    if (node == nullptr)
        return fallback;
    const gllc::JsonValue *member = node->find(key);
    if (member == nullptr || !member->isNumber())
        return fallback;
    return member->number();
}

void
renderLatencyRow(const gllc::JsonValue *latency, const char *key,
                 const char *label)
{
    const gllc::JsonValue *hist =
        latency != nullptr ? latency->find(key) : nullptr;
    std::printf("  %-12s p50 %6.0f ms   p95 %6.0f ms\n", label,
                numberOr(hist, "p50", 0.0),
                numberOr(hist, "p95", 0.0));
}

/** Render one StatusV2 document to stdout. */
void
render(const gllc::JsonValue &status, bool clear_screen)
{
    if (clear_screen)
        std::printf("\x1b[H\x1b[2J");

    const gllc::JsonValue *queue = status.find("queue");
    const gllc::JsonValue *jobs = status.find("jobs");
    const gllc::JsonValue *workers = status.find("workers");
    const gllc::JsonValue *latency = status.find("latency_ms");

    std::printf("gllcd  up %.0f s  cache hit rate %.1f%%\n\n",
                numberOr(&status, "uptime_seconds", 0.0),
                100.0 * numberOr(&status, "cache_hit_rate", 0.0));

    std::printf("queue  depth %.0f\n",
                numberOr(queue, "depth", 0.0));
    const gllc::JsonValue *classes =
        queue != nullptr ? queue->find("classes") : nullptr;
    if (classes != nullptr && classes->isArray()) {
        for (const gllc::JsonValue &cls : classes->items())
            std::printf("  prio %3.0f  depth %.0f\n",
                        numberOr(&cls, "priority", 0.0),
                        numberOr(&cls, "depth", 0.0));
    }

    std::printf("\njobs   submitted %.0f  completed %.0f  "
                "failed %.0f  quarantined %.0f\n",
                numberOr(jobs, "submitted", 0.0),
                numberOr(jobs, "completed", 0.0),
                numberOr(jobs, "failed", 0.0),
                numberOr(jobs, "quarantined", 0.0));
    std::printf("       cache hits %.0f  inflight joins %.0f\n",
                numberOr(jobs, "cache_hits", 0.0),
                numberOr(jobs, "inflight_joins", 0.0));
    std::printf("       shed %.0f  cancelled %.0f  "
                "recovered %.0f  client gone %.0f\n",
                numberOr(jobs, "shed", 0.0),
                numberOr(jobs, "cancelled", 0.0),
                numberOr(jobs, "recovered", 0.0),
                numberOr(jobs, "client_gone", 0.0));

    std::printf("\nworkers  configured %.0f  crashes %.0f  "
                "cell timeouts %.0f\n",
                numberOr(workers, "configured", 0.0),
                numberOr(workers, "crashes", 0.0),
                numberOr(workers, "cell_timeouts", 0.0));

    std::printf("\nlatency\n");
    renderLatencyRow(latency, "queue_wait", "queue wait");
    renderLatencyRow(latency, "exec", "execute");
    renderLatencyRow(latency, "e2e", "end-to-end");
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gllc;

    std::string socket_path;
    int tcp_port = -1;
    int interval_ms = 1000;
    bool once = false;
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--once") {
            once = true;
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", flag.c_str());
        const std::string value = argv[++i];
        if (flag == "--socket")
            socket_path = value;
        else if (flag == "--port")
            tcp_port = std::atoi(value.c_str());
        else if (flag == "--interval-ms")
            interval_ms = std::atoi(value.c_str());
        else
            fatal("unknown flag %s", flag.c_str());
    }
    if (socket_path.empty() && tcp_port < 0)
        fatal("need --socket PATH or --port N");
    if (interval_ms < 50)
        interval_ms = 50;

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    bool connected_once = false;
    while (!g_stop.load()) {
        Result<ServiceClient> client =
            socket_path.empty()
                ? ServiceClient::connectTcp(tcp_port)
                : ServiceClient::connectUnix(socket_path);
        Result<std::string> doc = Error(ErrorCode::Io, "");
        if (client.ok()) {
            ServiceClient live = client.take();
            doc = live.statusV2();
        } else {
            doc = client.error();
        }
        if (!doc.ok()) {
            if (once || !connected_once)
                fatal("gllc-top: %s",
                      doc.error().toString().c_str());
            // The daemon may be restarting; keep polling.
            std::printf("\x1b[H\x1b[2Jgllcd unreachable: %s\n",
                        doc.error().toString().c_str());
            std::fflush(stdout);
        } else {
            Result<JsonValue> parsed = parseJson(doc.value());
            if (!parsed.ok())
                fatal("gllc-top: bad status document: %s",
                      parsed.error().toString().c_str());
            connected_once = true;
            render(parsed.value(), !once);
        }
        if (once)
            break;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(interval_ms));
    }
    return 0;
}
