#!/usr/bin/env python3
"""Validator and regression gate for bench/microbench JSON.

Two modes over the "gllc-hotpath-v1" schema (bench/hotpath.hh):

  * schema validation, for failing fast on malformed bench output:

        python3 tools/check_perf.py --schema BENCH_hotpath.json

  * regression gating, comparing a fresh run against the checked-in
    baseline:

        python3 tools/check_perf.py --baseline BENCH_hotpath.json \
            --current result.json [--fail-pct 15] [--warn-pct 5]

    The two reports must be comparable: same schema, same benchmark
    configuration (scale, access counts, repeats, path) and the same
    policy set — anything else exits 1 as incomparable rather than
    producing a meaningless percentage.  A policy whose accesses/sec
    dropped more than --fail-pct percent fails the gate; more than
    --warn-pct prints a warning.  Faster-than-baseline results are
    reported and always pass (re-baseline to lock them in; see
    README "Performance harness").

Exits 0 when every requested check passes, 1 otherwise.
"""

import argparse
import json
import sys

SCHEMA = "gllc-hotpath-v1"

CONFIG_FIELDS = (
    "scale",
    "synthetic_accesses",
    "real_frames",
    "repeats",
    "generic_path",
)

POLICY_NUMBER_FIELDS = (
    "total_accesses",
    "total_seconds",
    "accesses_per_sec",
    "p50_cell_ms",
    "p95_cell_ms",
    "misses",
)


def load(path, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        errors.append(f"{path}: {exc}")
        return None


def check_schema(path, doc, errors):
    if not isinstance(doc, dict):
        errors.append(f"{path}: top level is not an object")
        return
    if doc.get("schema") != SCHEMA:
        errors.append(
            f"{path}: schema {doc.get('schema')!r}, expected {SCHEMA!r}"
        )
    config = doc.get("config")
    if not isinstance(config, dict):
        errors.append(f"{path}: \"config\" is not an object")
    else:
        for field in CONFIG_FIELDS:
            if field not in config:
                errors.append(f"{path}: config missing {field!r}")
    policies = doc.get("policies")
    if not isinstance(policies, list) or not policies:
        errors.append(f"{path}: \"policies\" is not a non-empty array")
        return
    seen = set()
    for i, p in enumerate(policies):
        where = f"{path}: policies[{i}]"
        if not isinstance(p, dict):
            errors.append(f"{where}: not an object")
            continue
        name = p.get("policy")
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: missing policy name")
            continue
        if name in seen:
            errors.append(f"{where}: duplicate policy {name!r}")
        seen.add(name)
        for field in POLICY_NUMBER_FIELDS:
            value = p.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                errors.append(
                    f"{where} ({name}): bad {field} {value!r}"
                )
        if isinstance(p.get("accesses_per_sec"), (int, float)):
            if p["accesses_per_sec"] <= 0:
                errors.append(
                    f"{where} ({name}): accesses_per_sec must be > 0"
                )


def check_comparable(baseline, current, base_doc, cur_doc, errors):
    base_cfg = base_doc.get("config", {})
    cur_cfg = cur_doc.get("config", {})
    for field in CONFIG_FIELDS:
        if base_cfg.get(field) != cur_cfg.get(field):
            errors.append(
                f"incomparable: config.{field} differs "
                f"({baseline}: {base_cfg.get(field)!r}, "
                f"{current}: {cur_cfg.get(field)!r})"
            )
    base_names = [p.get("policy") for p in base_doc.get("policies", [])]
    cur_names = [p.get("policy") for p in cur_doc.get("policies", [])]
    if sorted(base_names) != sorted(cur_names):
        errors.append(
            f"incomparable: policy sets differ "
            f"({baseline}: {sorted(base_names)}, "
            f"{current}: {sorted(cur_names)})"
        )


def compare(base_doc, cur_doc, fail_pct, warn_pct, errors):
    base = {p["policy"]: p for p in base_doc["policies"]}
    warned = 0
    for p in cur_doc["policies"]:
        name = p["policy"]
        base_rate = base[name]["accesses_per_sec"]
        cur_rate = p["accesses_per_sec"]
        delta_pct = (cur_rate - base_rate) / base_rate * 100.0
        line = (
            f"{name:<14} {base_rate / 1e6:8.2f} -> "
            f"{cur_rate / 1e6:8.2f} Macc/s  {delta_pct:+6.1f}%"
        )
        if delta_pct < -fail_pct:
            errors.append(
                f"{name}: accesses/sec regressed {-delta_pct:.1f}% "
                f"(limit {fail_pct}%)"
            )
            print(f"FAIL  {line}")
        elif delta_pct < -warn_pct:
            warned += 1
            print(f"WARN  {line}")
        else:
            print(f"  ok  {line}")
    if warned:
        print(
            f"check_perf: {warned} polic{'y' if warned == 1 else 'ies'}"
            f" slowed more than {warn_pct}% (within the {fail_pct}% gate)"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--schema", metavar="FILE",
                        help="validate FILE against the hotpath schema")
    parser.add_argument("--baseline", metavar="FILE",
                        help="checked-in baseline JSON")
    parser.add_argument("--current", metavar="FILE",
                        help="freshly produced JSON to gate")
    parser.add_argument("--fail-pct", type=float, default=15.0,
                        help="regression percentage that fails (default"
                        " 15)")
    parser.add_argument("--warn-pct", type=float, default=5.0,
                        help="regression percentage that warns (default"
                        " 5)")
    args = parser.parse_args()
    if bool(args.baseline) != bool(args.current):
        parser.error("--baseline and --current go together")
    if not args.schema and not args.baseline:
        parser.error("give --schema and/or --baseline/--current")

    errors = []
    if args.schema:
        doc = load(args.schema, errors)
        if doc is not None:
            check_schema(args.schema, doc, errors)

    if args.baseline and not errors:
        base_doc = load(args.baseline, errors)
        cur_doc = load(args.current, errors)
        if base_doc is not None and cur_doc is not None:
            check_schema(args.baseline, base_doc, errors)
            check_schema(args.current, cur_doc, errors)
            if not errors:
                check_comparable(args.baseline, args.current,
                                 base_doc, cur_doc, errors)
            if not errors:
                compare(base_doc, cur_doc, args.fail_pct,
                        args.warn_pct, errors)

    for error in errors:
        print(error)
    if errors:
        print(f"check_perf: {len(errors)} finding(s)")
        return 1
    print("check_perf: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
