"""Checker framework: findings, registry, suppressions, file model.

A checker is an object with

    name         stable kebab-case identifier ("bare-assert")
    description  one-liner for --list-checkers
    check_file(ctx) -> iterable[Finding]     (per-file checkers)
  or
    check_repo(repo) -> iterable[Finding]    (whole-repo checkers)

registered via the @register decorator.  Findings carry a repo-
relative path and 1-based line (0 = whole file, "" path = whole
repo).  A finding on line N is suppressed by a comment on that line
containing `gllc-lint: allow(<checker-name>)`; file-scope findings
(line 0) look for the marker on line 1.  Repo-scope findings are not
suppressible — they describe generated artifacts, not code style.
"""

import dataclasses
import re
from pathlib import Path

# (directory, strip-prefix-for-include-guards); the guard of
# src/cache/rrip.hh is GLLC_CACHE_RRIP_HH, of bench/trace_bench.hh
# is GLLC_BENCH_TRACE_BENCH_HH, and so on.
SOURCE_DIRS = [
    ("src", "src"),
    ("tests", None),
    ("bench", None),
    ("examples", None),
]

CPP_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}
HEADER_SUFFIXES = {".hh", ".hpp", ".h"}

SUPPRESS = re.compile(r"gllc-lint:\s*allow\(([a-z0-9-]+)\)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One lint finding, JSON-serializable via dataclasses.asdict."""

    checker: str
    path: str  # repo-relative, "" for repo-scope findings
    line: int  # 1-based; 0 = file-scope
    message: str

    def render(self):
        if not self.path:
            return f"[{self.checker}] {self.message}"
        where = f"{self.path}:{self.line}" if self.line else self.path
        return f"{where}: [{self.checker}] {self.message}"


class FileContext:
    """One source file as the per-file checkers see it."""

    def __init__(self, root, path, strip_prefix):
        self.root = root
        self.path = path
        self.rel = path.relative_to(root)
        self.strip_prefix = strip_prefix
        self.raw = path.read_text(encoding="utf-8")
        self.code = strip_comments_and_strings(self.raw)
        self.raw_lines = self.raw.splitlines()
        self.code_lines = self.code.splitlines()

    @property
    def is_header(self):
        return self.path.suffix in HEADER_SUFFIXES


class RepoContext:
    """The whole checked file set, for cross-file checkers."""

    def __init__(self, root, files):
        self.root = root
        self.files = files


_REGISTRY = {}


def register(checker):
    """Class decorator: instantiate and register a checker."""
    instance = checker()
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate checker {instance.name}")
    _REGISTRY[instance.name] = instance
    return checker


def all_checkers():
    """Registered checkers, sorted by name for stable output."""
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def get_checker(name):
    return _REGISTRY[name]


def walk_files(root):
    """Yield FileContexts for every checked source file, sorted."""
    for directory, strip_prefix in SOURCE_DIRS:
        base = root / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CPP_SUFFIXES:
                yield FileContext(root, path, strip_prefix)


def suppressed(finding, contexts_by_rel):
    """True when the finding's line carries its allow() marker."""
    ctx = contexts_by_rel.get(finding.path)
    if ctx is None:
        return False
    line = finding.line if finding.line else 1
    if line > len(ctx.raw_lines):
        return False
    for match in SUPPRESS.finditer(ctx.raw_lines[line - 1]):
        if match.group(1) == finding.checker:
            return True
    return False


def run_checkers(root, checkers):
    """Run @p checkers over the repo; returns (findings, nfiles)."""
    files = list(walk_files(root))
    by_rel = {str(ctx.rel): ctx for ctx in files}
    repo = RepoContext(root, files)
    findings = []
    for checker in checkers:
        if hasattr(checker, "check_file"):
            for ctx in files:
                findings.extend(checker.check_file(ctx))
        if hasattr(checker, "check_repo"):
            findings.extend(checker.check_repo(repo))
    findings = [f for f in findings if not suppressed(f, by_rel)]
    findings.sort(key=lambda f: (f.path, f.line, f.checker, f.message))
    return findings, len(files)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, keeping line
    structure so reported line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)
