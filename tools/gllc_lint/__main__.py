"""`python3 -m gllc_lint` entry point."""

import sys

from .cli import main

sys.exit(main())
