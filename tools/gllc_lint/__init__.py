"""Repo-convention and drift linter for gllc.

A small checker framework (see core.py) with one module per checker
under checkers/.  Run through tools/lint.py, the `lint` CMake target,
or `python3 -m gllc_lint` from tools/.
"""

__all__ = ["core", "cli"]
