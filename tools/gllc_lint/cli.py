"""gllc_lint command line.

    python3 tools/lint.py                      # run every checker
    python3 tools/lint.py --checkers a,b       # a subset
    python3 tools/lint.py --json findings.json # machine-readable
    python3 tools/lint.py --json -             # JSON to stdout
    python3 tools/lint.py --list-checkers
    python3 tools/lint.py --update-metrics-doc # rewrite docs/METRICS.md

Exits 0 when clean, 1 with a file:line report otherwise.  A finding
on a given line is suppressed by a comment on that line containing
`gllc-lint: allow(<checker-name>)`.
"""

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from . import checkers  # noqa: F401  (importing registers them)
from .core import all_checkers, get_checker, run_checkers

JSON_SCHEMA = "gllc-lint-v1"


def build_parser():
    parser = argparse.ArgumentParser(
        prog="lint.py", description="gllc repo linter")
    parser.add_argument(
        "--root", type=Path, default=None,
        help="repository root (default: two levels up from tools/)")
    parser.add_argument(
        "--checkers", default=None, metavar="NAME[,NAME...]",
        help="run only these checkers")
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write findings as JSON to PATH ('-' = stdout)")
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list registered checkers and exit")
    parser.add_argument(
        "--update-metrics-doc", action="store_true",
        help="regenerate docs/METRICS.md from the code and exit")
    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    root = args.root or Path(__file__).resolve().parent.parent.parent

    if args.list_checkers:
        for checker in all_checkers():
            print(f"{checker.name:16} {checker.description}")
        return 0

    if args.update_metrics_doc:
        from .core import RepoContext, walk_files

        repo = RepoContext(root, list(walk_files(root)))
        path = get_checker("metrics-doc").update(repo)
        print(f"lint: wrote {path.relative_to(root)}")
        return 0

    if args.checkers is None:
        selected = all_checkers()
    else:
        try:
            selected = [get_checker(name.strip())
                        for name in args.checkers.split(",")]
        except KeyError as missing:
            known = ", ".join(c.name for c in all_checkers())
            print(f"lint: unknown checker {missing}; known: {known}",
                  file=sys.stderr)
            return 2

    findings, checked = run_checkers(root, selected)

    if args.json is not None:
        document = json.dumps(
            {
                "schema": JSON_SCHEMA,
                "files_checked": checked,
                "checkers": [c.name for c in selected],
                "findings": [dataclasses.asdict(f) for f in findings],
            },
            indent=2) + "\n"
        if args.json == "-":
            sys.stdout.write(document)
        else:
            Path(args.json).write_text(document, encoding="utf-8")

    if args.json != "-":
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"lint: {len(findings)} finding(s) in {checked} "
                  f"files")
        else:
            print(f"lint: OK ({checked} files, "
                  f"{len(selected)} checkers)")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main())
