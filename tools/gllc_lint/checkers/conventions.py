"""Line-level convention checkers clang-tidy cannot express (or
that must run without any LLVM tooling installed)."""

import re
from pathlib import Path

from ..core import Finding, register

BARE_ASSERT = re.compile(r"(?<![\w:])assert\s*\(")
BANNED_RAND = re.compile(
    r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r)\s*\(")
RAW_STDERR = re.compile(r"(?:std::)?v?fprintf\s*\(\s*stderr\b")
RAW_GETENV = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")

# The only files in src/ allowed to write stderr directly: the
# logging sink itself and the throttled progress reporter.
STDERR_ALLOWLIST = {
    Path("src/common/logging.cc"),
    Path("src/common/progress.cc"),
}

# The only file allowed to call getenv: the env-knob wrapper itself.
GETENV_ALLOWLIST = {
    Path("src/common/env.cc"),
}

RAW_SOCKET_IO = re.compile(
    r"(?<![\w.>])(?:::)?(?:read|write|recv|send|readv|writev|"
    r"recvmsg|sendmsg)\s*\(")

# Service files exempt from the deadline-IO rule: protocol.cc
# implements the deadline wrappers themselves, and worker.cc talks to
# its forked worker over a pipe it owns end to end (bounded by the
# cell timeout, not a connection deadline).
CONN_DEADLINE_ALLOWLIST = {
    Path("src/service/protocol.cc"),
    Path("src/service/worker.cc"),
}


@register
class BareAssert:
    """GLLC_ASSERT survives NDEBUG and honours -DGLLC_ASSERTS=OFF;
    a bare assert() silently vanishes from release builds."""

    name = "bare-assert"
    description = ("bare assert(); use GLLC_ASSERT / GLLC_ASSERT_MSG "
                   "(common/logging.hh)")

    def check_file(self, ctx):
        for lineno, line in enumerate(ctx.code_lines, start=1):
            for match in BARE_ASSERT.finditer(line):
                # static_assert survives the (?<![\w:]) guard only
                # when written "static_assert"; re-check to be safe.
                if line[: match.start()].rstrip().endswith("static"):
                    continue
                yield Finding(
                    self.name, str(ctx.rel), lineno,
                    "bare assert(); use GLLC_ASSERT / GLLC_ASSERT_MSG "
                    "from common/logging.hh")


@register
class BannedRand:
    """All randomness flows through gllc::Rng so experiments are
    reproducible from seeds."""

    name = "banned-rand"
    description = ("std::rand/srand/rand_r; use gllc::Rng "
                   "(common/rng.hh)")

    def check_file(self, ctx):
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if BANNED_RAND.search(line):
                yield Finding(
                    self.name, str(ctx.rel), lineno,
                    "std::rand/srand; use gllc::Rng (common/rng.hh) "
                    "so runs are seed-reproducible")


@register
class RawStderr:
    """Diagnostics go through warn()/note()/panic()/fatal() or the
    shared ProgressMeter so they stay greppable and tagged."""

    name = "raw-stderr"
    description = ("raw fprintf(stderr) in src/; use logging.hh or "
                   "the progress reporter")

    def check_file(self, ctx):
        if ctx.rel.parts[0] != "src" or ctx.rel in STDERR_ALLOWLIST:
            return
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if RAW_STDERR.search(line):
                yield Finding(
                    self.name, str(ctx.rel), lineno,
                    "raw fprintf(stderr); use warn()/note() "
                    "(common/logging.hh) or the progress reporter")


@register
class ConnDeadline:
    """A slow or dead client must never pin a connection thread: all
    client-socket IO in the service layer goes through the
    deadline-bounded wrappers (readFrame/writeFrame with timeout_ms,
    readSomeDeadline/writeAllDeadline), never raw read/write/recv/
    send.  One unbounded call is a slowloris foothold."""

    name = "conn-deadline"
    description = ("raw socket IO in src/service/; use the deadline "
                   "wrappers from service/protocol.hh")

    def check_file(self, ctx):
        if len(ctx.rel.parts) < 2 or ctx.rel.parts[:2] != (
                "src", "service"):
            return
        if ctx.rel in CONN_DEADLINE_ALLOWLIST or ctx.is_header:
            return
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if RAW_SOCKET_IO.search(line):
                yield Finding(
                    self.name, str(ctx.rel), lineno,
                    "raw socket IO in the service layer; use the "
                    "deadline-bounded helpers in service/protocol.hh "
                    "(readFrame/writeFrame with timeout_ms, "
                    "readSomeDeadline/writeAllDeadline) so a slow "
                    "client cannot pin this thread")


@register
class RawGetenv:
    """Environment knobs flow through envInt()/envString() and are
    sampled once at construction, never in per-access code."""

    name = "raw-getenv"
    description = "getenv outside src/common/env.cc"

    def check_file(self, ctx):
        if ctx.rel in GETENV_ALLOWLIST:
            return
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if RAW_GETENV.search(line):
                yield Finding(
                    self.name, str(ctx.rel), lineno,
                    "getenv; use envInt()/envString() (common/env.hh) "
                    "and sample the knob once at construction, not "
                    "per access")
