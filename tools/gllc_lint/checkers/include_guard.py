"""Include-guard checker: #ifndef GLLC_<PATH>_HH, never #pragma
once, guard name derived from the path under the source root."""

import re

from ..core import Finding, register

PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
IFNDEF = re.compile(r"^\s*#\s*ifndef\s+(\w+)", re.MULTILINE)
DEFINE = re.compile(r"^\s*#\s*define\s+(\w+)", re.MULTILINE)


def expected_guard(rel, strip_prefix):
    """GLLC_CACHE_RRIP_HH for src/cache/rrip.hh, and so on."""
    parts = list(rel.parts)
    if strip_prefix is not None and parts and parts[0] == strip_prefix:
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(hh|hpp|h)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "GLLC_" + stem.upper() + "_HH"


@register
class IncludeGuard:
    name = "include-guard"
    description = ("headers use #ifndef GLLC_<PATH>_HH guards, "
                   "not #pragma once")

    def check_file(self, ctx):
        if not ctx.is_header:
            return
        rel = str(ctx.rel)
        if PRAGMA_ONCE.search(ctx.raw):
            yield Finding(
                self.name, rel, 0,
                "#pragma once; use a GLLC_*_HH include guard")
        guard = expected_guard(ctx.rel, ctx.strip_prefix)
        ifndef = IFNDEF.search(ctx.code)
        define = DEFINE.search(ctx.code)
        if ifndef is None or define is None:
            yield Finding(self.name, rel, 0,
                          f"missing include guard {guard}")
        elif ifndef.group(1) != guard:
            yield Finding(
                self.name, rel, 0,
                f"include guard {ifndef.group(1)}, expected {guard}")
        elif define.group(1) != guard:
            yield Finding(
                self.name, rel, 0,
                f"#define {define.group(1)} does not match guard "
                f"{guard}")
