"""Include-cycle checker.

Quoted includes in src/ resolve against the src/ root (the build
compiles with -Isrc), so the quoted-include graph over src/ headers
is statically known.  A cycle in it compiles today only by accident
of guard ordering and breaks the moment someone reorders includes;
this checker walks the graph and reports every elementary cycle
among headers.
"""

import re

from ..core import Finding, register

QUOTED_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"',
                            re.MULTILINE)


def include_graph(repo):
    """{src-relative header: [included src-relative headers]}."""
    headers = {
        str(ctx.rel.relative_to("src")): ctx
        for ctx in repo.files
        if ctx.rel.parts[0] == "src" and ctx.is_header
    }
    graph = {}
    for name, ctx in headers.items():
        edges = []
        # Includes live in the raw text: the stripped view blanks
        # string literals, taking the include paths with them.
        for inc in QUOTED_INCLUDE.findall(ctx.raw):
            if inc in headers:
                edges.append(inc)
        graph[name] = sorted(set(edges))
    return graph


def find_cycles(graph):
    """Elementary cycles as canonical node tuples (DFS back-edges;
    each cycle reported once, rotated to start at its minimum)."""
    cycles = set()
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    stack = []

    def visit(node):
        color[node] = GRAY
        stack.append(node)
        for nxt in graph.get(node, ()):
            if color[nxt] == GRAY:
                cycle = stack[stack.index(nxt):]
                pivot = cycle.index(min(cycle))
                cycles.add(tuple(cycle[pivot:] + cycle[:pivot]))
            elif color[nxt] == WHITE:
                visit(nxt)
        stack.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            visit(node)
    return sorted(cycles)


@register
class IncludeCycle:
    name = "include-cycle"
    description = "no cycles in the src/ quoted-include graph"

    def check_repo(self, repo):
        for cycle in find_cycles(include_graph(repo)):
            chain = " -> ".join(cycle + (cycle[0],))
            yield Finding(
                self.name, "src/" + cycle[0], 0,
                f"header include cycle: {chain}")
