"""Environment-knob drift checker.

The README documents every GLLC_* environment variable the code
reads.  This checker extracts the knob names from the envInt()/
envString() call sites in src/ and cross-checks them against
README.md in both directions:

  * a knob read by code but never mentioned in the README is an
    undocumented knob (finding on the call site);
  * a README bullet (`* \\`GLLC_FOO\\``) for a knob nothing reads is
    stale documentation (finding on the README line).

"Mentioned" for the first direction is any backticked occurrence, so
knobs explained inline inside another bullet (GLLC_RESUME inside the
GLLC_CHECKPOINT entry, say) count as documented.
"""

import re

from ..core import Finding, register

ENV_READ = re.compile(r"\benv(?:Int|String)\s*\(")
ENV_NAME = re.compile(r'"(GLLC_[A-Z0-9_]+)"')
README_MENTION = re.compile(r"`(GLLC_[A-Z0-9_]+)")
README_BULLET = re.compile(r"^\*\s+`(GLLC_[A-Z0-9_]+)")

README = "README.md"


def knobs_read_by_code(repo):
    """{knob: (rel-path, line)} for every envInt/envString site."""
    knobs = {}
    for ctx in repo.files:
        if ctx.rel.parts[0] != "src":
            continue
        for lineno, line in enumerate(ctx.code_lines, start=1):
            if not ENV_READ.search(line):
                continue
            raw = ctx.raw_lines[lineno - 1]
            # The name literal may sit on the next line when the
            # call wraps; look one line ahead.
            match = ENV_NAME.search(raw)
            if match is None and lineno < len(ctx.raw_lines):
                match = ENV_NAME.search(ctx.raw_lines[lineno])
            if match:
                knobs.setdefault(match.group(1),
                                 (str(ctx.rel), lineno))
    return knobs


@register
class EnvDoc:
    name = "env-doc"
    description = ("README documents every GLLC_* env knob the code "
                   "reads, and documents no dead ones")

    def check_repo(self, repo):
        readme = repo.root / README
        if not readme.is_file():
            yield Finding(self.name, README, 0, "README.md missing")
            return
        text = readme.read_text(encoding="utf-8")
        mentioned = set(README_MENTION.findall(text))
        knobs = knobs_read_by_code(repo)

        for knob, (rel, lineno) in sorted(knobs.items()):
            if knob not in mentioned:
                yield Finding(
                    self.name, rel, lineno,
                    f"env knob {knob} is read here but not "
                    f"documented in README.md")

        for lineno, line in enumerate(text.splitlines(), start=1):
            match = README_BULLET.match(line)
            if match and match.group(1) not in knobs:
                yield Finding(
                    self.name, README, lineno,
                    f"documented env knob {match.group(1)} is read "
                    f"by nothing in src/")
