"""Checker modules; importing this package registers them all."""

from . import conventions  # noqa: F401
from . import env_doc  # noqa: F401
from . import include_cycle  # noqa: F401
from . import include_guard  # noqa: F401
from . import metrics_doc  # noqa: F401
