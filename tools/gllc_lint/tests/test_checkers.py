"""Unit tests for the gllc_lint checker framework.

Each test builds a miniature repository in a temp directory and runs
one checker over it, so the checkers are exercised against known-bad
and known-good fixtures rather than the live tree (which must stay
clean anyway — CI runs the real linter separately).

Run directly or through ctest (`gllc_lint_unittests`):

    python3 tools/gllc_lint/tests/test_checkers.py
"""

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent.parent))

from gllc_lint import checkers  # noqa: F401, E402
from gllc_lint.checkers import metrics_doc  # noqa: E402
from gllc_lint.core import get_checker, run_checkers  # noqa: E402

GUARDED_HEADER = """\
#ifndef GLLC_{STEM}_HH
#define GLLC_{STEM}_HH
{body}
#endif // GLLC_{STEM}_HH
"""


class LintFixture(unittest.TestCase):
    """A scratch repo the tests populate file by file."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        self.addCleanup(self._tmp.cleanup)

    def write(self, rel, text):
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def header(self, rel, body=""):
        stem = (rel.replace("src/", "", 1)
                .replace("/", "_").replace(".hh", "").upper())
        return self.write(
            rel, GUARDED_HEADER.format(STEM=stem, body=body))

    def run_checker(self, name):
        findings, _ = run_checkers(self.root, [get_checker(name)])
        return findings


class TestConventions(LintFixture):
    def test_bare_assert_flagged_static_assert_not(self):
        self.write("src/a.cc", "void f() { assert(1); }\n"
                               "static_assert(true);\n")
        findings = self.run_checker("bare-assert")
        self.assertEqual([(f.path, f.line) for f in findings],
                         [("src/a.cc", 1)])

    def test_assert_in_comment_or_string_ignored(self):
        self.write("src/a.cc",
                   '// assert(1)\nconst char *s = "assert(2)";\n')
        self.assertEqual(self.run_checker("bare-assert"), [])

    def test_banned_rand(self):
        self.write("src/a.cc", "int x = std::rand();\n")
        findings = self.run_checker("banned-rand")
        self.assertEqual(len(findings), 1)

    def test_raw_stderr_only_in_src_minus_allowlist(self):
        self.write("src/a.cc", 'void f() { fprintf(stderr, "x"); }\n')
        self.write("src/common/logging.cc",
                   'void g() { fprintf(stderr, "x"); }\n')
        self.write("tests/t.cc",
                   'void h() { fprintf(stderr, "x"); }\n')
        findings = self.run_checker("raw-stderr")
        self.assertEqual([f.path for f in findings], ["src/a.cc"])

    def test_raw_getenv(self):
        self.write("src/a.cc", 'char *v = getenv("X");\n')
        self.write("src/common/env.cc", 'char *v = getenv("X");\n')
        findings = self.run_checker("raw-getenv")
        self.assertEqual([f.path for f in findings], ["src/a.cc"])

    def test_conn_deadline_flags_raw_socket_io_in_service(self):
        self.write("src/service/daemon.cc",
                   "void f(int fd) { char c;\n"
                   "    ::read(fd, &c, 1);\n"
                   "    send(fd, &c, 1, 0); }\n")
        findings = self.run_checker("conn-deadline")
        self.assertEqual([(f.path, f.line) for f in findings],
                         [("src/service/daemon.cc", 2),
                          ("src/service/daemon.cc", 3)])

    def test_conn_deadline_allowlists_and_scope(self):
        raw = "void f(int fd) { char c; ::recv(fd, &c, 1, 0); }\n"
        # The wrapper implementation and the pipe-owning worker are
        # exempt; so is everything outside src/service/.
        self.write("src/service/protocol.cc", raw)
        self.write("src/service/worker.cc", raw)
        self.write("src/common/io.cc", raw)
        self.write("tests/t.cc", raw)
        self.assertEqual(self.run_checker("conn-deadline"), [])

    def test_conn_deadline_ignores_methods_and_wrappers(self):
        self.write("src/service/daemon.cc",
                   "void f() { store_.read(k);\n"
                   "    stream->write(b);\n"
                   "    readFrame(fd, payload, 100);\n"
                   "    writeAllDeadline(fd, p, n, 100); }\n")
        self.assertEqual(self.run_checker("conn-deadline"), [])

    def test_suppression_comment(self):
        self.write(
            "src/a.cc",
            "void f() { assert(1); } // gllc-lint: allow(bare-assert)\n"
            "void g() { assert(2); }\n")
        findings = self.run_checker("bare-assert")
        self.assertEqual([f.line for f in findings], [2])


class TestIncludeGuard(LintFixture):
    def test_correct_guard_passes(self):
        self.header("src/cache/rrip.hh")
        self.assertEqual(self.run_checker("include-guard"), [])

    def test_wrong_guard_name(self):
        self.write("src/a.hh",
                   "#ifndef WRONG_HH\n#define WRONG_HH\n#endif\n")
        findings = self.run_checker("include-guard")
        self.assertIn("expected GLLC_A_HH", findings[0].message)

    def test_pragma_once_rejected(self):
        self.write("src/a.hh", "#pragma once\n")
        findings = self.run_checker("include-guard")
        messages = " ".join(f.message for f in findings)
        self.assertIn("#pragma once", messages)

    def test_missing_guard(self):
        self.write("src/a.hh", "int x;\n")
        findings = self.run_checker("include-guard")
        self.assertIn("missing include guard", findings[0].message)


class TestMetricsDoc(LintFixture):
    CODE = """\
void dump(MetricsRegistry &reg, const std::string &prefix) {
    reg.addCounter("dram.refreshes", 1);
    reg.addCounter(prefix + "ship.fills_dead", 2);
    reg.recordValue(prefix + "table." + key, 3);
    reg.maxGauge("gllcd.queue_depth", 4);
    recordLatencyMs("gllcd.job.e2e_ms", 12.5);
    reg.addCounter(computed);  // no literal: skipped
}
"""

    def test_missing_doc_flagged(self):
        self.write("src/m.cc", self.CODE)
        findings = self.run_checker("metrics-doc")
        self.assertEqual(len(findings), 1)
        self.assertIn("missing", findings[0].message)

    def test_patterns_extracted(self):
        self.write("src/m.cc", self.CODE)
        from gllc_lint.core import RepoContext, walk_files

        repo = RepoContext(self.root, list(walk_files(self.root)))
        patterns = sorted(
            p for p, _ in metrics_doc.extract_metrics(repo))
        self.assertEqual(patterns, [
            "*ship.fills_dead", "*table.*", "dram.refreshes",
            "gllcd.job.e2e_ms", "gllcd.queue_depth"])

    def test_latency_histograms_documented_with_own_kind(self):
        self.write("src/m.cc", self.CODE)
        from gllc_lint.core import RepoContext, walk_files

        repo = RepoContext(self.root, list(walk_files(self.root)))
        kinds = dict(metrics_doc.extract_metrics(repo))
        self.assertIn(("gllcd.job.e2e_ms", "latency"), kinds)

    def test_up_to_date_doc_passes_and_drift_flagged(self):
        self.write("src/m.cc", self.CODE)
        from gllc_lint.core import RepoContext, walk_files

        repo = RepoContext(self.root, list(walk_files(self.root)))
        get_checker("metrics-doc").update(repo)
        self.assertEqual(self.run_checker("metrics-doc"), [])

        # A renamed metric makes the committed doc stale.
        self.write("src/m.cc",
                   self.CODE.replace("dram.refreshes", "dram.blinks"))
        findings = self.run_checker("metrics-doc")
        self.assertEqual(len(findings), 1)
        self.assertIn("stale", findings[0].message)


class TestEnvDoc(LintFixture):
    def test_undocumented_knob_flagged(self):
        self.write("src/e.cc", 'int v = envInt("GLLC_SECRET", 0);\n')
        self.write("README.md", "nothing here\n")
        findings = self.run_checker("env-doc")
        self.assertEqual(len(findings), 1)
        self.assertIn("GLLC_SECRET", findings[0].message)
        self.assertEqual(findings[0].path, "src/e.cc")

    def test_inline_mention_counts_as_documented(self):
        self.write("src/e.cc", 'int v = envInt("GLLC_KNOB", 0);\n')
        self.write("README.md", "set `GLLC_KNOB=1` to enable\n")
        self.assertEqual(self.run_checker("env-doc"), [])

    def test_stale_bullet_flagged(self):
        self.write("src/e.cc", 'int v = envInt("GLLC_KNOB", 0);\n')
        self.write("README.md",
                   "* `GLLC_KNOB` — real\n* `GLLC_GONE` — stale\n")
        findings = self.run_checker("env-doc")
        self.assertEqual(len(findings), 1)
        self.assertIn("GLLC_GONE", findings[0].message)
        self.assertEqual(findings[0].path, "README.md")

    def test_wrapped_call_name_on_next_line(self):
        self.write("src/e.cc",
                   'int v = envInt(\n    "GLLC_WRAPPED", 0);\n')
        self.write("README.md", "docs\n")
        findings = self.run_checker("env-doc")
        self.assertIn("GLLC_WRAPPED", findings[0].message)


class TestIncludeCycle(LintFixture):
    def test_acyclic_graph_passes(self):
        self.header("src/a.hh", '#include "b.hh"\n')
        self.header("src/b.hh")
        self.assertEqual(self.run_checker("include-cycle"), [])

    def test_two_node_cycle_reported_once(self):
        self.header("src/a.hh", '#include "b.hh"\n')
        self.header("src/b.hh", '#include "a.hh"\n')
        findings = self.run_checker("include-cycle")
        self.assertEqual(len(findings), 1)
        self.assertIn("a.hh -> b.hh -> a.hh", findings[0].message)

    def test_self_include_reported(self):
        self.header("src/a.hh", '#include "a.hh"\n')
        findings = self.run_checker("include-cycle")
        self.assertEqual(len(findings), 1)

    def test_missing_target_ignored(self):
        self.header("src/a.hh", '#include "not_in_repo.hh"\n')
        self.assertEqual(self.run_checker("include-cycle"), [])


class TestCli(unittest.TestCase):
    """End-to-end: the shim entry point against the real repo."""

    ROOT = Path(__file__).resolve().parents[3]

    def test_json_output_schema(self):
        proc = subprocess.run(
            [sys.executable,
             str(self.ROOT / "tools" / "lint.py"), "--json", "-"],
            capture_output=True, text=True, check=False)
        document = json.loads(proc.stdout)
        self.assertEqual(document["schema"], "gllc-lint-v1")
        self.assertGreater(document["files_checked"], 0)
        self.assertIn("include-cycle", document["checkers"])
        for finding in document["findings"]:
            self.assertIn("checker", finding)
            self.assertIn("path", finding)
            self.assertIn("line", finding)
            self.assertIn("message", finding)

    def test_unknown_checker_is_usage_error(self):
        proc = subprocess.run(
            [sys.executable,
             str(self.ROOT / "tools" / "lint.py"),
             "--checkers", "no-such"],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
