/**
 * gllc-submit: submit a sweep job to a gllcd daemon (or run it
 * locally) and write the result JSON.
 *
 * Usage:
 *   gllc-submit (--socket PATH | --port N | --local)
 *               [--policies A,B,C] [--llc-bytes N]
 *               [--tenant NAME] [--priority N] [--out PATH]
 *               [--retries N] [--backoff-ms N]
 *   gllc-submit (--socket PATH | --port N) --status
 *
 * The job is built exactly the way the bench harnesses build
 * sweeps: frames and scale come from the environment (GLLC_FRAMES,
 * GLLC_SCALE), then SweepConfig::resolve() pins every default into
 * a serializable SweepJobSpec.  --local runs the same spec
 * in-process through SweepConfig::fromSpec(spec).run() and writes
 * the same writeSweepJson() bytes — CI diffs the two outputs to
 * prove the service is byte-faithful.
 *
 * A daemon that is down (connection refused) or shedding load
 * (typed shed frame) is retried with jittered exponential backoff:
 * --retries N attempts (default 5, 0 disables retry) spaced from
 * --backoff-ms (default 100) doubling per attempt, never less than
 * the daemon's own retry-after hint.
 *
 * Exit status: 0 on a clean result, 75 (EX_TEMPFAIL, matching the
 * bench harnesses) when the result contains quarantined cells, 69
 * (EX_UNAVAILABLE) when every retry was refused or shed — scripts
 * can tell "the service turned us away" from "cells quarantined" —
 * and 1 on any hard failure.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "analysis/report.hh"
#include "analysis/sweep.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "service/client.hh"

namespace
{

/** Split a comma-separated list. */
std::vector<std::string>
splitList(const std::string &csv)
{
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= csv.size()) {
        const std::size_t comma = csv.find(',', pos);
        const std::size_t end =
            comma == std::string::npos ? csv.size() : comma;
        if (end > pos)
            out.push_back(csv.substr(pos, end - pos));
        pos = end + 1;
    }
    return out;
}

/** Retries turned away by an unavailable daemon end in this. */
constexpr int kExitUnavailable = 69;  // EX_UNAVAILABLE

/** Exponential-backoff ceiling between attempts. */
constexpr int kMaxBackoffMs = 10000;

/**
 * Jittered exponential backoff: --backoff-ms doubled per attempt,
 * scaled by a uniform [0.5, 1.5) factor so a shed thundering herd
 * does not reconverge, floored at the daemon's retry-after hint.
 */
int
backoffDelayMs(int base_ms, int attempt, int retry_after_ms,
               gllc::Rng &rng)
{
    double delay = static_cast<double>(base_ms);
    for (int i = 0; i < attempt; ++i)
        delay *= 2.0;
    delay *= 0.5 + rng.uniform();
    const int jittered = static_cast<int>(
        std::min(delay, static_cast<double>(kMaxBackoffMs)));
    return std::max(jittered, retry_after_ms);
}

/** Write @p payload to @p path ("" or "-" = stdout). */
bool
writeOutput(const std::string &path, const std::string &payload)
{
    if (path.empty() || path == "-") {
        std::cout << payload;
        return true;
    }
    std::ofstream os(path, std::ios::binary);
    if (!os) {
        gllc::warn("cannot write %s", path.c_str());
        return false;
    }
    os << payload;
    return os.good();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace gllc;

    std::string socket_path;
    int port = -1;
    bool local = false;
    bool status = false;
    std::string tenant = "gllc-submit";
    int priority = 0;
    std::string out_path;
    std::vector<std::string> policies{"DRRIP+UCD", "GSPC+UCD"};
    std::uint64_t llc_bytes = 8ull << 20;
    int retries = 5;
    int backoff_ms = 100;

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--local") {
            local = true;
            continue;
        }
        if (flag == "--status") {
            status = true;
            continue;
        }
        if (i + 1 >= argc)
            fatal("%s requires a value", flag.c_str());
        const std::string value = argv[++i];
        if (flag == "--socket")
            socket_path = value;
        else if (flag == "--port")
            port = std::atoi(value.c_str());
        else if (flag == "--policies")
            policies = splitList(value);
        else if (flag == "--llc-bytes")
            llc_bytes = std::strtoull(value.c_str(), nullptr, 0);
        else if (flag == "--tenant")
            tenant = value;
        else if (flag == "--priority")
            priority = std::atoi(value.c_str());
        else if (flag == "--out")
            out_path = value;
        else if (flag == "--retries")
            retries = std::atoi(value.c_str());
        else if (flag == "--backoff-ms")
            backoff_ms = std::atoi(value.c_str());
        else
            fatal("unknown flag %s", flag.c_str());
    }

    if (!local && socket_path.empty() && port < 0)
        fatal("need --socket, --port, or --local");

    if (status) {
        Result<ServiceClient> client =
            socket_path.empty()
                ? ServiceClient::connectTcp(port)
                : ServiceClient::connectUnix(socket_path);
        if (!client.ok())
            fatal("%s", client.error().toString().c_str());
        ServiceClient conn = client.take();
        Result<std::string> doc = conn.status();
        if (!doc.ok())
            fatal("%s", doc.error().toString().c_str());
        std::cout << doc.value() << "\n";
        return 0;
    }

    // Same construction path as the benches: env-driven frames and
    // scale, resolved into an explicit, serializable spec.
    const SweepJobSpec spec = SweepConfig()
                                  .policies(policies)
                                  .llcBytes(llc_bytes)
                                  .resolve();

    if (local) {
        const SweepResult result =
            SweepConfig::fromSpec(spec).run();
        std::ostringstream payload;
        writeSweepJson(result, payload);
        if (!writeOutput(out_path, payload.str()))
            return 1;
        return result.quarantined().empty() ? 0 : 75;
    }

    Rng rng(static_cast<std::uint64_t>(
                std::chrono::steady_clock::now()
                    .time_since_epoch()
                    .count())
            ^ static_cast<std::uint64_t>(::getpid()));
    Result<SubmitOutcome> outcome =
        Error(ErrorCode::Io, "not attempted");
    for (int attempt = 0;; ++attempt) {
        ShedInfo shed;
        Result<ServiceClient> client =
            socket_path.empty()
                ? ServiceClient::connectTcp(port)
                : ServiceClient::connectUnix(socket_path);
        if (client.ok()) {
            ServiceClient conn = client.take();
            outcome = conn.submit(spec, tenant, priority, &shed);
            if (outcome.ok())
                break;
            // Only a typed shed is worth retrying here: other
            // daemon errors (bad spec, execution failure) will
            // fail identically every time.
            if (outcome.error().code != ErrorCode::Overloaded)
                fatal("%s",
                      outcome.error().toString().c_str());
        } else {
            // Daemon down or restarting: same retry loop as shed.
            outcome = client.error();
        }
        if (attempt >= retries) {
            warn("%s", outcome.error().toString().c_str());
            warn("gllc-submit: giving up after %d attempt(s)",
                 attempt + 1);
            return kExitUnavailable;
        }
        const int delay_ms = backoffDelayMs(
            backoff_ms, attempt, shed.retryAfterMs, rng);
        note("gllc-submit: %s; retrying in %d ms (attempt "
             "%d/%d)",
             outcome.error().toString().c_str(), delay_ms,
             attempt + 1, retries);
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
    }

    const SubmitOutcome &got = outcome.value();
    note("job %llu: %s, %u quarantined cell(s)",
         static_cast<unsigned long long>(got.header.jobId),
         got.header.cached ? "served from result store"
                           : "computed",
         got.header.quarantined);
    if (!writeOutput(out_path, got.payload))
        return 1;
    return got.header.quarantined == 0 ? 0 : 75;
}
