#!/usr/bin/env python3
"""Entry point for the gllc repo linter.

The linter itself is the tools/gllc_lint package — a small checker
framework (convention checks, include-guard style, metrics/env-knob
documentation drift, include-cycle detection).  This shim keeps the
historical `python3 tools/lint.py` invocation (and the `lint` CMake
target) working; see `python3 tools/lint.py --help` for the options
and `--list-checkers` for what runs.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from gllc_lint.cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
