#!/usr/bin/env python3
"""Repo-convention linter for gllc.

Checks that clang-tidy cannot express (or that must run without any
LLVM tooling installed):

  * no bare assert(): invariants go through GLLC_ASSERT /
    GLLC_ASSERT_MSG (common/logging.hh) so they survive NDEBUG builds
    and honour -DGLLC_ASSERTS=OFF; static_assert and gtest's
    ASSERT_* / EXPECT_* are fine
  * include guards: every header uses #ifndef GLLC_<PATH>_HH derived
    from its path under its source root; #pragma once is rejected
  * no std::rand / srand / rand: all randomness flows through
    common/rng.hh (Rng) so experiments are reproducible from seeds
  * no raw fprintf(stderr, ...) in src/ outside common/logging.cc
    and common/progress.cc: diagnostics go through warn()/note()/
    panic()/fatal() (common/logging.hh) or the shared ProgressMeter
    so they stay greppable and consistently tagged
  * no getenv outside src/common/env.cc: environment knobs flow
    through envInt()/envString() (common/env.hh) and are sampled
    once at construction time, never in per-access code, so the
    replay hot path stays free of libc calls

Run from the repository root (or via the `lint` CMake target):

    python3 tools/lint.py

Exits 0 when clean, 1 with a file:line report otherwise.
"""

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

# (directory, strip-prefix-for-guard) pairs; the guard of
# src/cache/rrip.hh is GLLC_CACHE_RRIP_HH, of bench/trace_bench.hh is
# GLLC_BENCH_TRACE_BENCH_HH, and so on.
SOURCE_DIRS = [
    ("src", "src"),
    ("tests", None),
    ("bench", None),
    ("examples", None),
]

CPP_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}

BARE_ASSERT = re.compile(r"(?<![\w:])assert\s*\(")
BANNED_RAND = re.compile(r"(?<![\w:])(?:std::)?(?:rand|srand|rand_r)\s*\(")
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b", re.MULTILINE)
RAW_STDERR = re.compile(r"(?:std::)?v?fprintf\s*\(\s*stderr\b")
RAW_GETENV = re.compile(r"(?<![\w:])(?:std::)?getenv\s*\(")

# The only files in src/ allowed to write stderr directly: the
# logging sink itself and the throttled progress reporter.
STDERR_ALLOWLIST = {
    Path("src/common/logging.cc"),
    Path("src/common/progress.cc"),
}

# The only file allowed to call getenv: the env-knob wrapper itself.
GETENV_ALLOWLIST = {
    Path("src/common/env.cc"),
}


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, keeping line
    structure so reported line numbers stay accurate."""
    out = []
    i = 0
    n = len(text)
    state = "code"  # code | line | block | dquote | squote
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "dquote"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "squote"
                out.append(" ")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # dquote / squote
            quote = '"' if state == "dquote" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
            out.append(" " if c != "\n" else c)
        i += 1
    return "".join(out)


def expected_guard(path, strip_prefix):
    rel = path.relative_to(ROOT)
    parts = list(rel.parts)
    if strip_prefix is not None and parts and parts[0] == strip_prefix:
        parts = parts[1:]
    stem = "_".join(parts)
    stem = re.sub(r"\.(hh|hpp|h)$", "", stem)
    stem = re.sub(r"[^A-Za-z0-9]", "_", stem)
    return "GLLC_" + stem.upper() + "_HH"


def check_file(path, strip_prefix, findings):
    raw = path.read_text(encoding="utf-8")
    code = strip_comments_and_strings(raw)
    rel = path.relative_to(ROOT)

    for lineno, line in enumerate(code.splitlines(), start=1):
        for match in BARE_ASSERT.finditer(line):
            # static_assert survives the (?<![\w:]) guard only when
            # written as "static_assert"; re-check to be safe.
            start = match.start()
            if line[:start].rstrip().endswith("static"):
                continue
            findings.append(
                f"{rel}:{lineno}: bare assert(); use GLLC_ASSERT / "
                "GLLC_ASSERT_MSG from common/logging.hh"
            )
        if BANNED_RAND.search(line):
            findings.append(
                f"{rel}:{lineno}: std::rand/srand; use gllc::Rng "
                "(common/rng.hh) so runs are seed-reproducible"
            )
        if (
            rel.parts[0] == "src"
            and rel not in STDERR_ALLOWLIST
            and RAW_STDERR.search(line)
        ):
            findings.append(
                f"{rel}:{lineno}: raw fprintf(stderr); use warn()/"
                "note() (common/logging.hh) or the progress reporter"
            )
        if rel not in GETENV_ALLOWLIST and RAW_GETENV.search(line):
            findings.append(
                f"{rel}:{lineno}: getenv; use envInt()/envString() "
                "(common/env.hh) and sample the knob once at "
                "construction, not per access"
            )

    if path.suffix in {".hh", ".hpp", ".h"}:
        if PRAGMA_ONCE.search(raw):
            findings.append(
                f"{rel}: #pragma once; use a GLLC_*_HH include guard"
            )
        guard = expected_guard(path, strip_prefix)
        ifndef = re.search(r"^\s*#\s*ifndef\s+(\w+)", code, re.MULTILINE)
        define = re.search(r"^\s*#\s*define\s+(\w+)", code, re.MULTILINE)
        if ifndef is None or define is None:
            findings.append(f"{rel}: missing include guard {guard}")
        else:
            if ifndef.group(1) != guard:
                findings.append(
                    f"{rel}: include guard {ifndef.group(1)}, "
                    f"expected {guard}"
                )
            elif define.group(1) != guard:
                findings.append(
                    f"{rel}: #define {define.group(1)} does not match "
                    f"guard {guard}"
                )


def main():
    findings = []
    checked = 0
    for directory, strip_prefix in SOURCE_DIRS:
        base = ROOT / directory
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES:
                continue
            check_file(path, strip_prefix, findings)
            checked += 1

    for finding in findings:
        print(finding)
    if findings:
        print(f"lint: {len(findings)} finding(s) in {checked} files")
        return 1
    print(f"lint: OK ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
